package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatalf("registry handed out a second counter for the same name")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.SetMax(3)
	if got := g.Load(); got != 7 {
		t.Fatalf("SetMax lowered the gauge: %d", got)
	}
	g.SetMax(9)
	if got := g.Load(); got != 9 {
		t.Fatalf("SetMax did not raise the gauge: %d", got)
	}

	h := r.Histogram("h")
	h.Observe(0)
	h.Observe(1)
	h.Observe(1000)
	h.Observe(-5) // clamps to 0
	if got := h.Count(); got != 4 {
		t.Fatalf("histogram count = %d, want 4", got)
	}
	if got := h.Sum(); got != 1001 {
		t.Fatalf("histogram sum = %d, want 1001", got)
	}
	s := h.snapshot()
	if s.Buckets[0] != 2 { // the two zeros
		t.Fatalf("bucket 0 = %d, want 2", s.Buckets[0])
	}
	if s.Buckets[1] != 1 { // the 1
		t.Fatalf("bucket 1 = %d, want 1", s.Buckets[1])
	}
	if s.Buckets[10] != 1 { // 1000 is in [512, 1024)
		t.Fatalf("bucket 10 = %d, want 1", s.Buckets[10])
	}
	if len(s.Buckets) != 11 {
		t.Fatalf("trailing buckets not trimmed: len %d", len(s.Buckets))
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.SetMax(2)
	h.Observe(3)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments must read as zero")
	}
	rep := r.Snapshot()
	if len(rep.Counters) != 0 || len(rep.Gauges) != 0 || len(rep.Histograms) != 0 {
		t.Fatalf("nil registry snapshot must be empty")
	}

	var tr *Trace
	if tid := tr.Thread("w"); tid != 0 {
		t.Fatalf("nil trace Thread = %d, want 0", tid)
	}
	tr.Begin(0, "span")
	tr.End(0)
	tr.Count("k", 1)
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("nil trace must record nothing")
	}
	if err := tr.WriteJSON(io.Discard); err == nil {
		t.Fatalf("nil trace WriteJSON should error")
	}
}

// TestDisabledPathZeroAlloc is the benchmark guard from the issue in test
// form: the nil-sink path must not allocate at any record site.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.SetMax(2)
		h.Observe(17)
		tr.Begin(1, "s")
		tr.End(1)
		tr.Count("k", 5)
	})
	if allocs != 0 {
		t.Fatalf("disabled-sink record sites allocated %v times per run, want 0", allocs)
	}
}

func TestSnapshotAndReport(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.sweeps").Add(12)
	r.Gauge("sim.levels").Set(5)
	r.Histogram("sim.sweep_ns").Observe(1500)
	r.Histogram("sim.sweep_ns").Observe(2500)
	r.Counter("plain") // registered but zero: still reported

	rep := r.Snapshot()
	if rep.Counters["sim.sweeps"] != 12 {
		t.Fatalf("snapshot counter = %d, want 12", rep.Counters["sim.sweeps"])
	}
	if _, ok := rep.Counters["plain"]; !ok {
		t.Fatalf("zero-valued registered counter missing from snapshot")
	}
	if rep.Gauges["sim.levels"] != 5 {
		t.Fatalf("snapshot gauge = %d, want 5", rep.Gauges["sim.levels"])
	}
	hs := rep.Histograms["sim.sweep_ns"]
	if hs.Count != 2 || hs.Sum != 4000 {
		t.Fatalf("snapshot histogram = %+v", hs)
	}
	if rep.GoVersion == "" || rep.GoMaxProcs == 0 {
		t.Fatalf("snapshot missing runtime info: %+v", rep)
	}

	phases := rep.PhaseNS()
	if phases["sim.sweep"] != 4000 {
		t.Fatalf("PhaseNS = %v, want sim.sweep: 4000", phases)
	}
	if _, ok := phases["plain"]; ok {
		t.Fatalf("PhaseNS must only include *_ns histograms: %v", phases)
	}

	var buf bytes.Buffer
	if err := r.WriteReport(&buf); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if back.Counters["sim.sweeps"] != 12 {
		t.Fatalf("round-tripped report lost data: %+v", back)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("shared").Inc()
				r.Counter(fmt.Sprintf("own.%d", i)).Inc()
				r.Histogram("h").Observe(int64(j))
				r.Gauge("g").SetMax(int64(j))
				_ = r.Snapshot()
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8*200 {
		t.Fatalf("shared counter = %d, want %d", got, 8*200)
	}
	if got := r.Histogram("h").Count(); got != 8*200 {
		t.Fatalf("histogram count = %d, want %d", got, 8*200)
	}
}

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.sweeps").Add(3)
	d, err := StartDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("StartDebug: %v", err)
	}
	defer d.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return body
	}

	var rep Report
	if err := json.Unmarshal(get("/debug/metrics"), &rep); err != nil {
		t.Fatalf("/debug/metrics is not a report: %v", err)
	}
	if rep.Counters["sim.sweeps"] != 3 {
		t.Fatalf("/debug/metrics counter = %d, want 3", rep.Counters["sim.sweeps"])
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["gatesim"]; !ok {
		t.Fatalf("/debug/vars missing the gatesim registry export")
	}

	if body := get("/debug/pprof/"); !strings.Contains(string(body), "goroutine") {
		t.Fatalf("/debug/pprof/ index does not list profiles")
	}
}

func TestStartDebugDefaultsToLocalhost(t *testing.T) {
	d, err := StartDebug(":0", nil)
	if err != nil {
		t.Fatalf("StartDebug: %v", err)
	}
	defer d.Close()
	if !strings.HasPrefix(d.Addr(), "127.0.0.1:") {
		t.Fatalf("host-less addr bound %q, want a 127.0.0.1 address", d.Addr())
	}
}

func BenchmarkDisabledCounter(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkDisabledHistogram(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkDisabledTraceSpan(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Begin(1, "s")
		tr.End(1)
	}
}

func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledHistogram(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
