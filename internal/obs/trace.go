package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// maxTraceEvents bounds the recorder's memory on runaway runs: past the cap
// new events are dropped and counted (Dropped), so a forgotten -trace on a
// week-long simulation degrades to a truncated trace instead of OOM.
const maxTraceEvents = 1 << 21

// event phase bytes, straight from the Chrome trace-event format.
const (
	phaseBegin    = 'B'
	phaseEnd      = 'E'
	phaseCounter  = 'C'
	phaseMetadata = 'M'
)

type traceEvent struct {
	name string
	ph   byte
	tid  int32
	ts   int64 // ns since trace start
	val  int64 // counter value (phaseCounter only)
}

// Trace records spans and counter samples and serializes them as
// Chrome/Perfetto trace-event JSON (load the file at https://ui.perfetto.dev
// or chrome://tracing). All methods are safe for concurrent use and
// nil-receiver-safe, so a nil *Trace is the disabled path.
//
// Spans nest per track: Begin/End pairs on one tid form a stack, exactly the
// trace-event "duration event" semantics. Tracks are allocated with Thread
// and named in the viewer through metadata events. Counter samples share one
// synthetic track per counter name.
type Trace struct {
	start time.Time

	mu      sync.Mutex
	events  []traceEvent
	threads int32
	open    map[int32]int // per-track open-span depth, for Balanced / safe End

	dropped atomic.Int64
}

// NewTrace starts a recorder; timestamps are monotonic from this call.
func NewTrace() *Trace {
	return &Trace{start: time.Now(), open: make(map[int32]int)}
}

// Thread allocates a new track and names it in the viewer. Track 0 exists
// implicitly (counter samples and spans recorded before any Thread call land
// there); the first Thread call returns 1. Returns 0 on a nil receiver.
func (t *Trace) Thread(name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.threads++
	tid := t.threads
	t.append(traceEvent{name: name, ph: phaseMetadata, tid: tid})
	return int(tid)
}

// Begin opens a span named name on track tid.
func (t *Trace) Begin(tid int, name string) {
	if t == nil {
		return
	}
	ts := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	t.open[int32(tid)]++
	t.append(traceEvent{name: name, ph: phaseBegin, tid: int32(tid), ts: ts})
	t.mu.Unlock()
}

// End closes the innermost open span on track tid. An End with no matching
// Begin is dropped rather than corrupting the trace.
func (t *Trace) End(tid int) {
	if t == nil {
		return
	}
	ts := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	if t.open[int32(tid)] > 0 {
		t.open[int32(tid)]--
		t.append(traceEvent{ph: phaseEnd, tid: int32(tid), ts: ts})
	}
	t.mu.Unlock()
}

// Count records one sample on the counter track named name. In Perfetto
// each distinct name renders as its own counter track.
func (t *Trace) Count(name string, v int64) {
	if t == nil {
		return
	}
	ts := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	t.append(traceEvent{name: name, ph: phaseCounter, ts: ts, val: v})
	t.mu.Unlock()
}

// append stores one event, honoring the cap. Callers hold t.mu.
func (t *Trace) append(ev traceEvent) {
	if len(t.events) >= maxTraceEvents {
		t.dropped.Add(1)
		return
	}
	t.events = append(t.events, ev)
}

// Dropped reports how many events the cap discarded; 0 on a nil receiver.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Len reports the recorded event count; 0 on a nil receiver.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON serializes the trace in Chrome trace-event JSON object form.
// Open spans are closed at the current time first, so a trace written after
// an aborted run is still balanced and loadable.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteJSON on a nil trace")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := time.Since(t.start).Nanoseconds()
	for tid, depth := range t.open {
		for ; depth > 0; depth-- {
			t.events = append(t.events, traceEvent{ph: phaseEnd, tid: tid, ts: ts})
		}
		t.open[tid] = 0
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range t.events {
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if err := writeEvent(bw, ev); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// writeEvent emits one trace-event JSON object. Timestamps are microseconds
// (the format's unit); fractional digits keep nanosecond resolution.
func writeEvent(bw *bufio.Writer, ev traceEvent) error {
	var buf [32]byte
	bw.WriteString(`{"pid":1,"tid":`)
	bw.Write(strconv.AppendInt(buf[:0], int64(ev.tid), 10))
	switch ev.ph {
	case phaseMetadata:
		bw.WriteString(`,"ph":"M","name":"thread_name","args":{"name":`)
		nameJSON, err := json.Marshal(ev.name)
		if err != nil {
			return err
		}
		bw.Write(nameJSON)
		bw.WriteString(`}}`)
	case phaseBegin, phaseEnd:
		bw.WriteString(`,"ph":"`)
		bw.WriteByte(ev.ph)
		bw.WriteString(`","ts":`)
		writeMicros(bw, ev.ts)
		if ev.name != "" {
			bw.WriteString(`,"name":`)
			nameJSON, err := json.Marshal(ev.name)
			if err != nil {
				return err
			}
			bw.Write(nameJSON)
		}
		bw.WriteString(`,"cat":"sim"}`)
	case phaseCounter:
		bw.WriteString(`,"ph":"C","ts":`)
		writeMicros(bw, ev.ts)
		bw.WriteString(`,"name":`)
		nameJSON, err := json.Marshal(ev.name)
		if err != nil {
			return err
		}
		bw.Write(nameJSON)
		bw.WriteString(`,"cat":"sim","args":{"value":`)
		bw.Write(strconv.AppendInt(buf[:0], ev.val, 10))
		bw.WriteString(`}}`)
	}
	return nil
}

// writeMicros writes ns as a decimal microsecond value with ns precision.
func writeMicros(bw *bufio.Writer, ns int64) {
	var buf [32]byte
	bw.Write(strconv.AppendInt(buf[:0], ns/1000, 10))
	bw.WriteByte('.')
	frac := ns % 1000
	bw.WriteByte(byte('0' + frac/100))
	bw.WriteByte(byte('0' + frac/10%10))
	bw.WriteByte(byte('0' + frac%10))
}

// ValidateTraceJSON checks that data is well-formed Chrome trace-event JSON
// as this package emits it: an object with a traceEvents array, every event
// carrying a known phase, timestamps present and globally nondecreasing for
// timed events, and Begin/End pairs balanced per track. The golden trace
// test and the CLI tests share this checker.
func ValidateTraceJSON(data []byte) error {
	var file struct {
		TraceEvents []struct {
			Name *string        `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if file.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	lastTS := -1.0
	depth := make(map[int]int)
	for i, ev := range file.TraceEvents {
		if ev.Pid == nil || ev.Tid == nil {
			return fmt.Errorf("obs: event %d missing pid/tid", i)
		}
		switch ev.Ph {
		case "M":
			continue
		case "B", "E", "C", "X":
		default:
			return fmt.Errorf("obs: event %d has unknown phase %q", i, ev.Ph)
		}
		if ev.Ts == nil {
			return fmt.Errorf("obs: event %d (phase %s) missing ts", i, ev.Ph)
		}
		if *ev.Ts < lastTS {
			return fmt.Errorf("obs: event %d timestamp %v goes backwards (previous %v)", i, *ev.Ts, lastTS)
		}
		lastTS = *ev.Ts
		switch ev.Ph {
		case "B":
			if ev.Name == nil || *ev.Name == "" {
				return fmt.Errorf("obs: begin event %d has no name", i)
			}
			depth[*ev.Tid]++
		case "E":
			depth[*ev.Tid]--
			if depth[*ev.Tid] < 0 {
				return fmt.Errorf("obs: event %d ends a span that was never begun on tid %d", i, *ev.Tid)
			}
		case "C":
			if ev.Name == nil || *ev.Name == "" {
				return fmt.Errorf("obs: counter event %d has no name", i)
			}
			if _, ok := ev.Args["value"]; !ok {
				return fmt.Errorf("obs: counter event %d has no args.value", i)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			return fmt.Errorf("obs: tid %d has %d unbalanced begin events", tid, d)
		}
	}
	return nil
}
