module gatesim

go 1.22
