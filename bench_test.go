// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations of the design choices DESIGN.md calls out. Scales are kept
// small so `go test -bench=.` completes in minutes; cmd/experiments runs the
// same harness at arbitrary scale.
package gatesim_test

import (
	"fmt"
	"testing"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/harness"
	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/partsim"
	"gatesim/internal/plan"
	"gatesim/internal/refsim"
	"gatesim/internal/sdf"
	"gatesim/internal/sim"
	"gatesim/internal/truthtab"
)

const (
	benchScale  = 0.005
	benchCycles = 60
)

func benchLib(b *testing.B) *truthtab.CompiledLibrary {
	b.Helper()
	lib, err := harness.CompiledBuiltin()
	if err != nil {
		b.Fatal(err)
	}
	return lib
}

// BenchmarkTable1Stats regenerates Table I: building all seven benchmark
// presets and collecting their statistics.
func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table1(benchScale, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 7 {
			b.Fatal("rows missing")
		}
	}
}

type benchDesign struct {
	d        *gen.Design
	planSDF  *plan.Plan // lowered against toy-STA delays
	planUnit *plan.Plan // same structure, unit delays
	stim     []gen.Change
}

func buildBench(b *testing.B, preset string, cycles int, af float64) *benchDesign {
	b.Helper()
	p, err := gen.PresetByName(preset)
	if err != nil {
		b.Fatal(err)
	}
	d, err := gen.Build(p.Spec(benchScale, 1))
	if err != nil {
		b.Fatal(err)
	}
	planSDF, err := plan.Build(d.Netlist, benchLib(b), gen.Delays(d, 1))
	if err != nil {
		b.Fatal(err)
	}
	return &benchDesign{
		d:        d,
		planSDF:  planSDF,
		planUnit: planSDF.WithDelays(sdf.Uniform(d.Netlist, 120)),
		stim:     gen.Stimuli(d, gen.StimSpec{Cycles: cycles, ActivityFactor: af, Seed: 1, ScanBurst: 16}),
	}
}

func (bd *benchDesign) runEngine(b *testing.B, p *plan.Plan, opts sim.Options) {
	b.Helper()
	changes := make([]sim.Change, len(bd.stim))
	for i, s := range bd.stim {
		changes[i] = sim.Change{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := sim.NewFromPlan(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		src := sim.NewSliceSource(changes)
		if err := e.RunStream(src, sim.StreamConfig{SlicePS: 16 * bd.d.Spec.ClockPeriodPS}); err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}

func (bd *benchDesign) runRefsim(b *testing.B, p *plan.Plan) {
	b.Helper()
	rstim := make([]refsim.Stim, len(bd.stim))
	for i, s := range bd.stim {
		rstim[i] = refsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := refsim.NewFromPlan(p)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Run(append([]refsim.Stim(nil), rstim...), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func (bd *benchDesign) runPartsim(b *testing.B, p *plan.Plan, partitions int) {
	b.Helper()
	pstim := make([]partsim.Stim, len(bd.stim))
	for i, s := range bd.stim {
		pstim[i] = partsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps, err := partsim.NewFromPlan(p, partsim.Options{Partitions: partitions})
		if err != nil {
			b.Fatal(err)
		}
		if err := ps.Run(append([]partsim.Stim(nil), pstim...), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table II's columns: the sequential reference
// ("VCS" stand-in), our engine with 1 thread, N threads, and the manycore
// (GPU-analogue) executor, on short (high-activity) and long traces.
func BenchmarkTable2(b *testing.B) {
	for _, preset := range []string{"blabla", "picorv32a", "aes128"} {
		for _, trace := range []struct {
			name   string
			cycles int
			af     float64
		}{
			{"short", benchCycles, 0.8},
			{"long", 4 * benchCycles, 0.5},
		} {
			bd := buildBench(b, preset, trace.cycles, trace.af)
			b.Run(fmt.Sprintf("%s/%s/ref", preset, trace.name), func(b *testing.B) {
				bd.runRefsim(b, bd.planSDF)
			})
			b.Run(fmt.Sprintf("%s/%s/ours-1cpu", preset, trace.name), func(b *testing.B) {
				bd.runEngine(b, bd.planSDF, sim.Options{Mode: sim.ModeSerial})
			})
			b.Run(fmt.Sprintf("%s/%s/ours-ncpu", preset, trace.name), func(b *testing.B) {
				bd.runEngine(b, bd.planSDF, sim.Options{Mode: sim.ModeParallel})
			})
			b.Run(fmt.Sprintf("%s/%s/ours-manycore", preset, trace.name), func(b *testing.B) {
				bd.runEngine(b, bd.planSDF, sim.Options{Mode: sim.ModeManycore})
			})
		}
	}
}

// BenchmarkFig8 regenerates Figure 8: thread scalability of the
// partition-based baseline versus the stable-time engine, with and without
// SDF annotation, on the aes256 design.
func BenchmarkFig8(b *testing.B) {
	bd := buildBench(b, "aes256", benchCycles, 0.6)
	for _, threads := range []int{1, 2, 4, 8} {
		mode := sim.ModeParallel
		if threads == 1 {
			mode = sim.ModeSerial
		}
		b.Run(fmt.Sprintf("partition/no-sdf/t%d", threads), func(b *testing.B) {
			bd.runPartsim(b, bd.planUnit, threads)
		})
		b.Run(fmt.Sprintf("partition/sdf/t%d", threads), func(b *testing.B) {
			bd.runPartsim(b, bd.planSDF, threads)
		})
		b.Run(fmt.Sprintf("ours/no-sdf/t%d", threads), func(b *testing.B) {
			bd.runEngine(b, bd.planUnit, sim.Options{Mode: mode, Threads: threads})
		})
		b.Run(fmt.Sprintf("ours/sdf/t%d", threads), func(b *testing.B) {
			bd.runEngine(b, bd.planSDF, sim.Options{Mode: mode, Threads: threads})
		})
	}
}

// BenchmarkLibraryCompile1000 measures the paper's §III-B claim: a
// 1000-cell library compiles with the bitmask DP in about a second.
func BenchmarkLibraryCompile1000(b *testing.B) {
	src := gen.LibrarySource(1000, 1)
	lib, err := liberty.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl, err := truthtab.CompileLibrary(lib)
		if err != nil {
			b.Fatal(err)
		}
		if len(cl.Tables) != 1000 {
			b.Fatal("wrong cell count")
		}
	}
}

// BenchmarkLibraryCompileBuiltin compiles the built-in sky130-style library.
func BenchmarkLibraryCompileBuiltin(b *testing.B) {
	lib := liberty.MustBuiltin()
	for i := 0; i < b.N; i++ {
		if _, err := truthtab.CompileLibrary(lib); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanBuild measures the one-shot lowering pass: netlist +
// compiled library + delays down to the flat SimPlan all three simulators
// construct from. This is the only O(design) setup cost left.
func BenchmarkPlanBuild(b *testing.B) {
	for _, preset := range []string{"picorv32a", "aes256"} {
		p, err := gen.PresetByName(preset)
		if err != nil {
			b.Fatal(err)
		}
		d, err := gen.Build(p.Spec(benchScale, 1))
		if err != nil {
			b.Fatal(err)
		}
		delays := gen.Delays(d, 1)
		b.Run(preset, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := plan.Build(d.Netlist, benchLib(b), delays); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(preset+"/redelay", func(b *testing.B) {
			b.ReportAllocs()
			pl, err := plan.Build(d.Netlist, benchLib(b), delays)
			if err != nil {
				b.Fatal(err)
			}
			unit := sdf.Uniform(d.Netlist, 120)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pl.WithDelays(unit)
			}
		})
	}
}

// BenchmarkEngineFromPlan measures engine construction over a prebuilt
// plan: a fixed number of flat arrays, independent of gate count (the
// TestNewFromPlanAllocs invariant, timed).
func BenchmarkEngineFromPlan(b *testing.B) {
	bd := buildBench(b, "aes256", benchCycles, 0.6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := sim.NewFromPlan(bd.planSDF, sim.Options{Mode: sim.ModeSerial})
		if err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}

// BenchmarkAblationDirtyVsOblivious isolates the dirty-set work filtering
// (CPU mode) against oblivious full-level scans (the GPU-style execution)
// on the same thread count: the cost of obliviousness on sparse activity.
func BenchmarkAblationDirtyVsOblivious(b *testing.B) {
	bd := buildBench(b, "picorv32a", benchCycles, 0.3) // sparse activity
	b.Run("dirty-set", func(b *testing.B) {
		bd.runEngine(b, bd.planSDF, sim.Options{Mode: sim.ModeParallel, Threads: 4})
	})
	b.Run("oblivious", func(b *testing.B) {
		bd.runEngine(b, bd.planSDF, sim.Options{Mode: sim.ModeManycore, Threads: 4})
	})
}

// BenchmarkAblationPagedQueue compares the paper's paged event storage
// (§III-D.3) against a plain slice under the simulator's trim-heavy access
// pattern.
func BenchmarkAblationPagedQueue(b *testing.B) {
	const events = 1 << 16
	b.Run("paged", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var pool event.Pool
			q := event.NewQueue(&pool, logic.V0)
			for k := int64(0); k < events; k++ {
				q.Append(k, logic.Value(k&1))
				if k%4096 == 4095 {
					q.TrimTo(k - 64)
				}
			}
		}
	})
	b.Run("slice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var q []event.Event
			start := 0
			for k := int64(0); k < events; k++ {
				q = append(q, event.Event{Time: k, Val: logic.Value(k & 1)})
				if k%4096 == 4095 {
					// Naive trim: re-slice (keeps backing array live) plus
					// periodic copy to actually release memory.
					keep := int(k-64) - start
					q = append([]event.Event(nil), q[keep:]...)
					start = int(k - 64)
				}
			}
			_ = q
		}
	})
}

// BenchmarkAblationTableLookup measures the extended-truth-table hot path.
func BenchmarkAblationTableLookup(b *testing.B) {
	lib := benchLib(b)
	tab := lib.Tables["DFF_NSR"]
	ins := []logic.Value{logic.VR, logic.V1, logic.V1, logic.V1}
	states := []logic.Value{logic.V0, logic.V1}
	outs := make([]logic.Value, tab.NumOutputs)
	next := make([]logic.Value, tab.NumStates)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.LookupInto(ins, states, outs, next)
	}
}

// BenchmarkAblationHybridThreshold shows the mode-selection crossover that
// motivates the paper's hybrid CPU/GPU dispatch: serial wins on a tiny
// design, parallel on a larger one.
func BenchmarkAblationHybridThreshold(b *testing.B) {
	for _, sc := range []struct {
		name  string
		scale float64
	}{
		{"tiny", 0.001},
		{"mid", 0.01},
	} {
		p, err := gen.PresetByName("blabla")
		if err != nil {
			b.Fatal(err)
		}
		d, err := gen.Build(p.Spec(sc.scale, 1))
		if err != nil {
			b.Fatal(err)
		}
		pl, err := plan.Build(d.Netlist, benchLib(b), gen.Delays(d, 1))
		if err != nil {
			b.Fatal(err)
		}
		bd := &benchDesign{
			d:       d,
			planSDF: pl,
			stim:    gen.Stimuli(d, gen.StimSpec{Cycles: benchCycles, ActivityFactor: 0.6, Seed: 1}),
		}
		b.Run(sc.name+"/serial", func(b *testing.B) {
			bd.runEngine(b, bd.planSDF, sim.Options{Mode: sim.ModeSerial})
		})
		b.Run(sc.name+"/parallel", func(b *testing.B) {
			bd.runEngine(b, bd.planSDF, sim.Options{Mode: sim.ModeParallel})
		})
	}
}

// BenchmarkAblationPartitionQuality reproduces the paper's claim that
// partition-based simulators depend on partition quality: the same design
// and stimulus under a locality-preserving versus a scattered partition.
func BenchmarkAblationPartitionQuality(b *testing.B) {
	bd := buildBench(b, "aes128", benchCycles, 0.6)
	runStrategy := func(b *testing.B, strategy partsim.Strategy) {
		pstim := make([]partsim.Stim, len(bd.stim))
		for i, s := range bd.stim {
			pstim[i] = partsim.Stim{Net: s.Net, Time: s.Time, Val: s.Val}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ps, err := partsim.NewFromPlan(bd.planSDF,
				partsim.Options{Partitions: 4, Strategy: strategy})
			if err != nil {
				b.Fatal(err)
			}
			if err := ps.Run(append([]partsim.Stim(nil), pstim...), nil); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(ps.Stats().CrossMessages), "crossmsgs")
		}
	}
	b.Run("contiguous", func(b *testing.B) { runStrategy(b, partsim.StrategyContiguous) })
	b.Run("round-robin", func(b *testing.B) { runStrategy(b, partsim.StrategyRoundRobin) })
}
