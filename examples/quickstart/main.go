// Quickstart: build a tiny delay-annotated circuit in code, simulate it
// with the stable-time engine, and print the resulting waveform.
//
// The circuit is the classic divide-by-two: a rising-edge flip-flop whose
// inverted output feeds its own D input, plus an XOR "phase detector"
// against the raw clock. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/sdf"
	"gatesim/internal/sim"
	"gatesim/internal/truthtab"
)

func main() {
	// 1. The cell library: parse (here: the built-in sky130-style library)
	//    and compile it into extended truth tables (paper §III-B).
	lib := liberty.MustBuiltin()
	clib, err := truthtab.CompileLibrary(lib)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The netlist: a DFF with async reset, QN looped back to D, and an
	//    XOR of Q with the clock.
	nl := netlist.New("quickstart", lib)
	for _, p := range []string{"clk", "rst_n"} {
		if err := nl.MarkInput(nl.AddNet(p)); err != nil {
			log.Fatal(err)
		}
	}
	mustInst(nl, "ff", "DFF_PR", map[string]string{
		"CLK": "clk", "D": "qn", "RESET_B": "rst_n", "Q": "q", "QN": "qn",
	})
	mustInst(nl, "phase", "XOR2", map[string]string{"A": "q", "B": "clk", "Y": "ph"})
	q, _ := nl.Net("q")
	ph, _ := nl.Net("ph")
	nl.MarkOutput(q)
	nl.MarkOutput(ph)

	// 3. Delay annotation: every arc gets 50 ps (use sdf.Parse/Apply for
	//    real SDF files).
	delays := sdf.Uniform(nl, 50)

	// 4. The engine. ModeAuto picks serial/parallel/manycore by size.
	engine, err := sim.New(nl, clib, delays, sim.Options{Mode: sim.ModeAuto})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Stimuli: hold reset for 1.2 ns, run a 1 ns clock for 8 cycles.
	clk, _ := nl.Net("clk")
	rst, _ := nl.Net("rst_n")
	inject(engine, rst, 0, logic.V0)
	inject(engine, rst, 1200, logic.V1)
	inject(engine, clk, 0, logic.V0)
	for c := 0; c < 8; c++ {
		inject(engine, clk, int64(c*1000+500), logic.V1)
		inject(engine, clk, int64(c*1000+1000), logic.V0)
	}
	if err := engine.Finish(); err != nil {
		log.Fatal(err)
	}

	// 6. Read the committed waveforms.
	for _, nid := range []netlist.NetID{q, ph} {
		fmt.Printf("%-3s:", nl.Nets[nid].Name)
		evq := engine.Events(nid)
		for i := evq.Start(); i < evq.Len(); i++ {
			ev := evq.MustAt(i)
			fmt.Printf(" %d->%v", ev.Time, ev.Val)
		}
		fmt.Println()
	}
	st := engine.Stats()
	fmt.Printf("stats: %d sweeps, %d gate visits, %d table queries, %d events\n",
		st.Sweeps, st.Visits, st.Queries, st.EventsCommitted)
}

func mustInst(nl *netlist.Netlist, name, cell string, conns map[string]string) {
	if _, err := nl.AddInstance(name, cell, conns); err != nil {
		log.Fatal(err)
	}
}

func inject(e *sim.Engine, nid netlist.NetID, t int64, v logic.Value) {
	if err := e.Inject(nid, t, v); err != nil {
		log.Fatal(err)
	}
}
