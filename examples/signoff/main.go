// Signoff: the end-to-end verification flow the paper's conclusion aims at
// — one delay-annotated gate-level simulation feeding three signoff
// consumers at once:
//
//   - functional events (the waveform itself),
//   - dynamic timing verification (setup/hold at every FF capture edge),
//   - switching activity for power (SAIF-style durations + a power report).
//
// The design is a generated picorv32a-flavoured benchmark; the stimulus
// deliberately runs a fast clock so marginal paths produce real setup
// violations to report.
//
// Run with:
//
//	go run ./examples/signoff [-scale 0.01] [-cycles 200]
package main

import (
	"flag"
	"fmt"
	"log"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/liberty"
	"gatesim/internal/netlist"
	"gatesim/internal/sim"
	"gatesim/internal/stats"
	"gatesim/internal/timing"
	"gatesim/internal/truthtab"
)

func main() {
	scale := flag.Float64("scale", 0.01, "design scale")
	cycles := flag.Int("cycles", 200, "clock cycles")
	flag.Parse()

	p, err := gen.PresetByName("picorv32a")
	if err != nil {
		log.Fatal(err)
	}
	d, err := gen.Build(p.Spec(*scale, 7))
	if err != nil {
		log.Fatal(err)
	}
	st := d.Netlist.Stats()
	fmt.Printf("design: %d cells, %d nets, %d pins (%d sequential)\n",
		st.Cells, st.Nets, st.Pins, d.Netlist.SequentialCount())

	clib, err := truthtab.CompileLibrary(liberty.MustBuiltin())
	if err != nil {
		log.Fatal(err)
	}
	delays := gen.Delays(d, 7)
	engine, err := sim.New(d.Netlist, clib, delays, sim.Options{Mode: sim.ModeAuto})
	if err != nil {
		log.Fatal(err)
	}

	// Signoff consumers.
	checker, err := timing.NewChecker(d.Netlist, clib, timing.Margins{Setup: 120, Hold: 30})
	if err != nil {
		log.Fatal(err)
	}
	ic, err := truthtab.ComputeInitialConditions(d.Netlist, clib)
	if err != nil {
		log.Fatal(err)
	}
	tracker := stats.NewDurationTracker(d.Netlist, ic.NetVals)
	activity := stats.NewActivity(d.Netlist)

	stim := gen.Stimuli(d, gen.StimSpec{
		Cycles: *cycles, ActivityFactor: 0.6, Seed: 7, ScanBurst: 16,
	})
	changes := make([]sim.Change, len(stim))
	for i, s := range stim {
		changes[i] = sim.Change{Net: s.Net, Time: s.Time, Val: s.Val}
	}
	var watch []netlist.NetID
	for i := range d.Netlist.Nets {
		watch = append(watch, netlist.NetID(i))
	}
	var endTime int64
	err = engine.RunStream(sim.NewSliceSource(changes), sim.StreamConfig{
		SlicePS: 16 * d.Spec.ClockPeriodPS,
		Watch:   watch,
		OnEvent: func(nid netlist.NetID, ev event.Event) {
			checker.Observe(nid, ev)
			tracker.Record(nid, ev)
			activity.Record(nid, ev)
			if ev.Time > endTime {
				endTime = ev.Time
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	es := engine.Stats()
	fmt.Printf("simulated %d cycles in %d sweeps (%d events, mode %v)\n\n",
		*cycles, es.Sweeps, es.EventsCommitted, engine.Mode())

	fmt.Print("--- dynamic timing verification ---\n")
	fmt.Print(checker.Summary(8))

	fmt.Print("\n--- switching activity / power ---\n")
	fmt.Printf("activity factor: %.3f toggles/net/cycle, X-transition share %.1f%%\n",
		activity.ActivityFactor(*cycles), 100*activity.GlitchRatio())
	rep := activity.Power(endTime, 1.8)
	fmt.Print(rep.Format(8))

	saif := tracker.WriteSAIF(endTime)
	fmt.Printf("\n--- SAIF (first lines of %d bytes) ---\n", len(saif))
	for i, line := 0, 0; i < len(saif) && line < 8; i++ {
		if saif[i] == '\n' {
			line++
		}
		if line < 8 {
			fmt.Print(string(saif[i]))
		}
	}
	fmt.Println()
}
