// Power analysis: the signoff task the paper motivates as the consumer of
// delay-annotated gate-level simulation. It generates a Table I-style
// benchmark, streams a stimulus through the stable-time engine while
// watching every net, and produces switching-activity statistics plus a
// dynamic-power report.
//
// With -lanes N (N > 1) it instead runs an activity sweep: N independently
// seeded stimulus vectors evaluated in ONE lane-mode pass through the
// netlist, reporting per-seed toggle counts and the activity spread — the
// vector-dependence question (is power stimulus-sensitive?) answered at
// roughly the cost of a single run.
//
// Run with:
//
//	go run ./examples/power [-preset picorv32a] [-scale 0.01] [-cycles 300] [-lanes 32]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/bits"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/lane"
	"gatesim/internal/liberty"
	"gatesim/internal/netlist"
	"gatesim/internal/sdf"
	"gatesim/internal/sim"
	"gatesim/internal/stats"
	"gatesim/internal/truthtab"
)

func main() {
	preset := flag.String("preset", "picorv32a", "benchmark preset")
	scale := flag.Float64("scale", 0.01, "design scale")
	cycles := flag.Int("cycles", 300, "simulated clock cycles")
	af := flag.Float64("af", 0.5, "input activity factor")
	lanes := flag.Int("lanes", 0, "run an N-seed activity sweep in one lane-mode pass (0 = scalar)")
	flag.Parse()

	p, err := gen.PresetByName(*preset)
	if err != nil {
		log.Fatal(err)
	}
	d, err := gen.Build(p.Spec(*scale, 1))
	if err != nil {
		log.Fatal(err)
	}
	st := d.Netlist.Stats()
	fmt.Printf("design %s (scale %g): %d cells, %d nets, %d pins\n",
		*preset, *scale, st.Cells, st.Nets, st.Pins)

	clib, err := truthtab.CompileLibrary(liberty.MustBuiltin())
	if err != nil {
		log.Fatal(err)
	}
	delays := gen.Delays(d, 1)

	if *lanes > 1 {
		laneSweep(d, clib, delays, *lanes, *cycles, *af)
		return
	}

	engine, err := sim.New(d.Netlist, clib, delays, sim.Options{Mode: sim.ModeAuto})
	if err != nil {
		log.Fatal(err)
	}

	stim := gen.Stimuli(d, gen.StimSpec{
		Cycles: *cycles, ActivityFactor: *af, Seed: 1, ScanBurst: 16,
	})
	changes := make([]sim.Change, len(stim))
	for i, s := range stim {
		changes[i] = sim.Change{Net: s.Net, Time: s.Time, Val: s.Val}
	}

	// Watch every net: power needs the full switching picture.
	var watch []netlist.NetID
	for i := range d.Netlist.Nets {
		watch = append(watch, netlist.NetID(i))
	}
	activity := stats.NewActivity(d.Netlist)
	var lastT int64
	err = engine.RunStream(sim.NewSliceSource(changes), sim.StreamConfig{
		SlicePS: 16 * d.Spec.ClockPeriodPS,
		Watch:   watch,
		OnEvent: func(nid netlist.NetID, ev event.Event) {
			activity.Record(nid, ev)
			if ev.Time > lastT {
				lastT = ev.Time
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d cycles (%d ps), mode %v\n", *cycles, lastT, engine.Mode())
	fmt.Printf("total transitions: %d (%.3f toggles/net/cycle, %.1f%% X transitions)\n",
		activity.Total(), activity.ActivityFactor(*cycles), 100*activity.GlitchRatio())
	rep := activity.Power(lastT, 1.8)
	fmt.Print(rep.Format(12))
}

// laneSweep evaluates `lanes` independently seeded stimulus vectors in one
// lane-mode pass, watching every net and counting each lane's toggles from
// the changed-lane masks. The spread of per-seed activity is the sweep's
// answer: how stimulus-dependent is this design's switching?
func laneSweep(d *gen.Design, clib *truthtab.CompiledLibrary, delays *sdf.Delays, lanes, cycles int, af float64) {
	engine, err := sim.New(d.Netlist, clib, delays, sim.Options{Mode: sim.ModeSerial, Lanes: lanes})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	perLaneG := gen.LaneStimuli(d, gen.StimSpec{
		Cycles: cycles, ActivityFactor: af, Seed: 1, ScanBurst: 16,
	}, lanes)
	perLane := make([][]sim.Change, lanes)
	for l, cs := range perLaneG {
		perLane[l] = make([]sim.Change, len(cs))
		for i, c := range cs {
			perLane[l][i] = sim.Change{Net: c.Net, Time: c.Time, Val: c.Val}
		}
	}
	merged, err := sim.MergeLaneChanges(perLane)
	if err != nil {
		log.Fatal(err)
	}

	var watch []netlist.NetID
	for i := range d.Netlist.Nets {
		watch = append(watch, netlist.NetID(i))
	}
	toggles := make([]int64, lanes)
	var lastT int64
	err = engine.RunLaneStream(merged, sim.LaneStreamConfig{
		SlicePS: 16 * d.Spec.ClockPeriodPS,
		Watch:   watch,
		OnEvent: func(nid netlist.NetID, t int64, mask uint32, w lane.Word) {
			for m := mask; m != 0; m &= m - 1 {
				toggles[bits.TrailingZeros32(m)]++
			}
			if t > lastT {
				lastT = t
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	nets := len(d.Netlist.Nets)
	fmt.Printf("lane sweep: %d stimulus seeds in one pass, %d cycles (%d ps), %d lane visits\n",
		lanes, cycles, lastT, engine.Stats().VisitsLane)
	minT, maxT, sum := toggles[0], toggles[0], int64(0)
	for _, n := range toggles {
		if n < minT {
			minT = n
		}
		if n > maxT {
			maxT = n
		}
		sum += n
	}
	fmt.Printf("%6s %12s %10s\n", "seed", "transitions", "tog/net/cyc")
	for l, n := range toggles {
		fmt.Printf("%6d %12d %10.3f\n", l, n, float64(n)/float64(nets)/float64(cycles))
	}
	mean := float64(sum) / float64(lanes)
	fmt.Printf("spread: min %d  max %d  mean %.0f  (max/min %.3f)\n",
		minT, maxT, mean, float64(maxT)/float64(minT))
}
