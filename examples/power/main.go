// Power analysis: the signoff task the paper motivates as the consumer of
// delay-annotated gate-level simulation. It generates a Table I-style
// benchmark, streams a stimulus through the stable-time engine while
// watching every net, and produces switching-activity statistics plus a
// dynamic-power report.
//
// Run with:
//
//	go run ./examples/power [-preset picorv32a] [-scale 0.01] [-cycles 300]
package main

import (
	"flag"
	"fmt"
	"log"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/liberty"
	"gatesim/internal/netlist"
	"gatesim/internal/sim"
	"gatesim/internal/stats"
	"gatesim/internal/truthtab"
)

func main() {
	preset := flag.String("preset", "picorv32a", "benchmark preset")
	scale := flag.Float64("scale", 0.01, "design scale")
	cycles := flag.Int("cycles", 300, "simulated clock cycles")
	af := flag.Float64("af", 0.5, "input activity factor")
	flag.Parse()

	p, err := gen.PresetByName(*preset)
	if err != nil {
		log.Fatal(err)
	}
	d, err := gen.Build(p.Spec(*scale, 1))
	if err != nil {
		log.Fatal(err)
	}
	st := d.Netlist.Stats()
	fmt.Printf("design %s (scale %g): %d cells, %d nets, %d pins\n",
		*preset, *scale, st.Cells, st.Nets, st.Pins)

	clib, err := truthtab.CompileLibrary(liberty.MustBuiltin())
	if err != nil {
		log.Fatal(err)
	}
	delays := gen.Delays(d, 1)
	engine, err := sim.New(d.Netlist, clib, delays, sim.Options{Mode: sim.ModeAuto})
	if err != nil {
		log.Fatal(err)
	}

	stim := gen.Stimuli(d, gen.StimSpec{
		Cycles: *cycles, ActivityFactor: *af, Seed: 1, ScanBurst: 16,
	})
	changes := make([]sim.Change, len(stim))
	for i, s := range stim {
		changes[i] = sim.Change{Net: s.Net, Time: s.Time, Val: s.Val}
	}

	// Watch every net: power needs the full switching picture.
	var watch []netlist.NetID
	for i := range d.Netlist.Nets {
		watch = append(watch, netlist.NetID(i))
	}
	activity := stats.NewActivity(d.Netlist)
	var lastT int64
	err = engine.RunStream(sim.NewSliceSource(changes), sim.StreamConfig{
		SlicePS: 16 * d.Spec.ClockPeriodPS,
		Watch:   watch,
		OnEvent: func(nid netlist.NetID, ev event.Event) {
			activity.Record(nid, ev)
			if ev.Time > lastT {
				lastT = ev.Time
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d cycles (%d ps), mode %v\n", *cycles, lastT, engine.Mode())
	fmt.Printf("total transitions: %d (%.3f toggles/net/cycle, %.1f%% X transitions)\n",
		activity.Total(), activity.ActivityFactor(*cycles), 100*activity.GlitchRatio())
	rep := activity.Power(lastT, 1.8)
	fmt.Print(rep.Format(12))
}
