// Scan chain: simulate a DFT test pattern through scan flip-flops — the
// general-purpose sequential behaviour (muxed scan cells, shift vs capture
// phases) that cycle-based and re-simulation approaches cannot express, and
// a central motivation of the paper.
//
// The example builds an 8-bit scan chain whose functional datapath computes
// bitwise XOR of the register with a constant pattern. It shifts a test
// vector in, pulses capture, shifts the response out, and checks it against
// the expected signature.
//
// Run with:
//
//	go run ./examples/scanchain
package main

import (
	"fmt"
	"log"

	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/sdf"
	"gatesim/internal/sim"
	"gatesim/internal/truthtab"
)

const (
	bits   = 8
	period = 2000 // ps
)

func main() {
	lib := liberty.MustBuiltin()
	clib, err := truthtab.CompileLibrary(lib)
	if err != nil {
		log.Fatal(err)
	}

	nl := netlist.New("scanchain", lib)
	for _, p := range []string{"clk", "se", "si"} {
		if err := nl.MarkInput(nl.AddNet(p)); err != nil {
			log.Fatal(err)
		}
	}
	inst := func(name, cell string, conns map[string]string) {
		if _, err := nl.AddInstance(name, cell, conns); err != nil {
			log.Fatal(err)
		}
	}
	// Functional logic: d[i] = q[i] XOR mask[i], mask = 0b10110010.
	// Tie cells provide the constants.
	inst("thi", "TIEHI", map[string]string{"Y": "one"})
	inst("tlo", "TIELO", map[string]string{"Y": "zero"})
	mask := []byte{0, 1, 0, 0, 1, 1, 0, 1} // bit 0 first
	prevQ := "si"
	for i := 0; i < bits; i++ {
		q := fmt.Sprintf("q%d", i)
		d := fmt.Sprintf("d%d", i)
		m := "zero"
		if mask[i] == 1 {
			m = "one"
		}
		inst(fmt.Sprintf("x%d", i), "XOR2", map[string]string{"A": q, "B": m, "Y": d})
		inst(fmt.Sprintf("sf%d", i), "SDFF_P", map[string]string{
			"CLK": "clk", "D": d, "SI": prevQ, "SE": "se", "Q": q,
		})
		prevQ = q
	}
	soNet, _ := nl.Net(prevQ) // scan out = last Q
	nl.MarkOutput(soNet)

	engine, err := sim.New(nl, clib, sdf.Uniform(nl, 60), sim.Options{Mode: sim.ModeSerial})
	if err != nil {
		log.Fatal(err)
	}

	clk, _ := nl.Net("clk")
	se, _ := nl.Net("se")
	si, _ := nl.Net("si")
	inj := func(nid netlist.NetID, t int64, v logic.Value) {
		if err := engine.Inject(nid, t, v); err != nil {
			log.Fatal(err)
		}
	}
	cycle := 0
	edge := func(c int) int64 { return int64(c)*period + period/2 }
	inj(clk, 0, logic.V0)
	totalCycles := bits + 1 + bits + 2
	for c := 0; c < totalCycles; c++ {
		inj(clk, edge(c), logic.V1)
		inj(clk, edge(c)+period/2, logic.V0)
	}

	// Phase 1: shift in the pattern 0b11001010 (bit 7 enters first so it
	// lands in q7 ... actually the first bit shifted in ends up deepest).
	pattern := []byte{1, 0, 1, 0, 1, 0, 0, 1}
	inj(se, 0, logic.V1)
	for i := 0; i < bits; i++ {
		inj(si, int64(cycle)*period+period/4, logic.Value(pattern[i]))
		cycle++
	}
	// Phase 2: one capture cycle (SE low): q[i] <= q[i] XOR mask[i].
	inj(se, int64(cycle)*period+period/4, logic.V0)
	cycle++
	// Phase 3: shift the response out (SE high again).
	inj(se, int64(cycle)*period+period/4, logic.V1)
	inj(si, int64(cycle)*period+period/4, logic.V0)

	if err := engine.Finish(); err != nil {
		log.Fatal(err)
	}

	// Compute the expected response: after 8 shift cycles, q[i] holds
	// pattern[7-i]; capture XORs with mask; the shift-out stream from the
	// last FF emits q7, then q6^..., in consecutive cycles.
	var state [bits]byte
	for i := 0; i < bits; i++ {
		state[i] = pattern[bits-1-i]
	}
	for i := 0; i < bits; i++ {
		state[i] ^= mask[i]
	}

	// Sample the scan-out net just before each shift-out edge.
	fmt.Println("scan-out stream (sampled at shift-out edges):")
	okAll := true
	for i := 0; i < bits; i++ {
		// The capture edge (cycle `bits`) already exposes state[7] at SO;
		// each following shift edge exposes the next lower bit. Sample
		// shortly after the CLK->Q delay of edge bits+i.
		c := bits + i
		sampleAt := edge(c) + 100
		got := engine.Value(soNet, sampleAt)
		want := logic.Value(state[bits-1-i])
		status := "ok"
		if got != want {
			status = "MISMATCH"
			okAll = false
		}
		fmt.Printf("  bit %d: got %v want %v  %s\n", i, got, want, status)
	}
	if okAll {
		fmt.Println("scan test PASSED: response matches the expected signature")
	} else {
		fmt.Println("scan test FAILED")
	}
	st := engine.Stats()
	fmt.Printf("stats: %d sweeps, %d visits, %d queries, %d events\n",
		st.Sweeps, st.Visits, st.Queries, st.EventsCommitted)
}
