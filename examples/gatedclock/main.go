// Gated clock: the paper's Figure 4 scenario, showing how stable time
// propagates through an integrated clock-gating cell to the sequential
// elements behind it.
//
// An ICG (low-transparent latch + AND) gates the clock of a small register
// bank. While the enable is low, the gated clock is a *stable* 0 — the
// engine proves this through the compiled truth table and keeps the entire
// gated region determined arbitrarily far ahead, which is exactly what lets
// the rest of the design simulate in parallel without waiting.
//
// Run with:
//
//	go run ./examples/gatedclock
package main

import (
	"fmt"
	"log"

	"gatesim/internal/liberty"
	"gatesim/internal/logic"
	"gatesim/internal/netlist"
	"gatesim/internal/sdf"
	"gatesim/internal/sim"
	"gatesim/internal/truthtab"
)

const period = 1000 // ps

func main() {
	lib := liberty.MustBuiltin()
	clib, err := truthtab.CompileLibrary(lib)
	if err != nil {
		log.Fatal(err)
	}

	// clk ----+-------------------- CLKGATE.CLK
	// en  ----|-------------------- CLKGATE.GATE
	//         |    gclk = CLKGATE.GCLK
	//         |      |
	//         |   [DFF bank: shift register q0 -> q1 -> q2]
	//         +-- [latch: transparent while clk low, samples en]
	nl := netlist.New("gatedclock", lib)
	for _, p := range []string{"clk", "en", "d0"} {
		if err := nl.MarkInput(nl.AddNet(p)); err != nil {
			log.Fatal(err)
		}
	}
	inst := func(name, cell string, conns map[string]string) {
		if _, err := nl.AddInstance(name, cell, conns); err != nil {
			log.Fatal(err)
		}
	}
	inst("icg", "CLKGATE", map[string]string{"CLK": "clk", "GATE": "en", "GCLK": "gclk"})
	inst("ff0", "DFF_P", map[string]string{"CLK": "gclk", "D": "d0", "Q": "q0"})
	inst("ff1", "DFF_P", map[string]string{"CLK": "gclk", "D": "q0", "Q": "q1"})
	inst("ff2", "DFF_P", map[string]string{"CLK": "gclk", "D": "q1", "Q": "q2"})
	inst("inv", "INV", map[string]string{"A": "clk", "Y": "clkn"})
	inst("lat", "DLATCH_H", map[string]string{"GATE": "clkn", "D": "en", "Q": "en_seen"})
	for _, o := range []string{"q2", "en_seen", "gclk"} {
		nid, _ := nl.Net(o)
		nl.MarkOutput(nid)
	}

	delays := sdf.Uniform(nl, 40)
	engine, err := sim.New(nl, clib, delays, sim.Options{Mode: sim.ModeSerial})
	if err != nil {
		log.Fatal(err)
	}

	clk, _ := nl.Net("clk")
	en, _ := nl.Net("en")
	d0, _ := nl.Net("d0")
	inj := func(nid netlist.NetID, t int64, v logic.Value) {
		if err := engine.Inject(nid, t, v); err != nil {
			log.Fatal(err)
		}
	}
	// 16 clock cycles; enable on only for cycles 6..9; d0 toggles per cycle.
	inj(en, 0, logic.V0)
	inj(en, int64(6*period), logic.V1)
	inj(en, int64(10*period), logic.V0)
	inj(clk, 0, logic.V0)
	for c := 0; c < 16; c++ {
		inj(clk, int64(c*period+period/2), logic.V1)
		inj(clk, int64(c*period+period), logic.V0)
		inj(d0, int64(c*period+period/4), logic.Value(c%2))
	}

	// Advance only half the trace first to demonstrate stable time: the
	// gated clock is determined far beyond the advance horizon while the
	// gate is shut.
	if err := engine.Advance(4 * period); err != nil {
		log.Fatal(err)
	}
	gclk, _ := nl.Net("gclk")
	q2, _ := nl.Net("q2")
	fmt.Printf("after Advance(%d):\n", 4*period)
	fmt.Printf("  gclk determined until %s (stable %v: the shut ICG filters every clock edge)\n",
		fmtT(engine.Events(gclk).DeterminedUntil()), engine.Value(gclk, 3*period))
	fmt.Printf("  q2   determined until %s\n", fmtT(engine.Events(q2).DeterminedUntil()))

	if err := engine.Finish(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfull run waveforms:")
	for _, name := range []string{"gclk", "q0", "q1", "q2", "en_seen"} {
		nid, _ := nl.Net(name)
		q := engine.Events(nid)
		fmt.Printf("  %-7s:", name)
		for i := q.Start(); i < q.Len(); i++ {
			ev := q.MustAt(i)
			fmt.Printf(" %5d->%v", ev.Time, ev.Val)
		}
		fmt.Println()
	}
	fmt.Println("\nnote: gclk pulses only during the enabled window (cycles 6..9, sampled")
	fmt.Println("by the ICG's internal latch), and the register bank shifts only then.")
}

func fmtT(t int64) string {
	if t >= sim.TimeInf {
		return "forever"
	}
	return fmt.Sprintf("%d ps", t)
}
