package main

import (
	"encoding/json"
	"strings"
	"testing"

	"gatesim/internal/harness"
)

func report(oursSDF, partSDF int64, phaseSweep int64) harness.BenchSmokeReport {
	return harness.BenchSmokeReport{
		Samples: []harness.BenchSmokePoint{
			{Threads: 2, OursSDFNS: oursSDF, PartSDFNS: partSDF},
		},
		PhaseNS: map[string]int64{"sim.sweep": phaseSweep},
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := report(1_000_000, 2_000_000, 500_000)
	// ours_sdf 25% slower: regression. part_sdf 5% slower: within threshold.
	cand := report(1_250_000, 2_100_000, 500_000)
	lines, regs := compare(base, cand, 0.10)
	if regs != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", regs, strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "ours_sdf_ns") || !strings.Contains(joined, "REGRESSION") {
		t.Errorf("missing regression line:\n%s", joined)
	}
}

func TestCompareCleanAndSkips(t *testing.T) {
	base := report(1_000_000, 2_000_000, 500_000)
	cand := report(1_050_000, 1_900_000, 540_000)
	// An extra candidate thread count without a baseline is skipped, not fatal.
	cand.Samples = append(cand.Samples, harness.BenchSmokePoint{Threads: 8, OursSDFNS: 1})
	lines, regs := compare(base, cand, 0.10)
	if regs != 0 {
		t.Fatalf("regressions = %d, want 0\n%s", regs, strings.Join(lines, "\n"))
	}
	if !strings.Contains(strings.Join(lines, "\n"), "t=8: no baseline sample") {
		t.Errorf("missing skip notice:\n%s", strings.Join(lines, "\n"))
	}
}

func TestComparePhaseRegression(t *testing.T) {
	base := report(1_000_000, 2_000_000, 500_000)
	cand := report(1_000_000, 2_000_000, 800_000)
	if _, regs := compare(base, cand, 0.10); regs != 1 {
		t.Fatalf("phase regression not flagged (regs = %d)", regs)
	}
}

func TestCompareZeroBaselineSkipped(t *testing.T) {
	base := report(0, 0, 0)
	cand := report(9_999_999, 9_999_999, 9_999_999)
	if _, regs := compare(base, cand, 0.10); regs != 0 {
		t.Fatalf("unmeasured baseline metrics must not regress (regs = %d)", regs)
	}
}

// TestCompareAcrossSchemaBoundary diffs an old-schema baseline (no script
// counters — they decode to zero) against a candidate that carries them:
// the gap must be annotated, never compared, and never a regression.
func TestCompareAcrossSchemaBoundary(t *testing.T) {
	old := `{"samples":[{"threads":2,"ours_sdf_ns":1000000,"part_sdf_ns":2000000,
		"an_unknown_future_field":42}]}`
	var base harness.BenchSmokeReport
	if err := json.Unmarshal([]byte(old), &base); err != nil {
		t.Fatalf("old-schema baseline must decode cleanly: %v", err)
	}
	cand := report(1_010_000, 2_000_000, 0)
	cand.Samples[0].ScriptSegments = 12
	cand.Samples[0].SegmentsSkipped = 3400
	lines, regs := compare(base, cand, 0.10)
	if regs != 0 {
		t.Fatalf("schema gap flagged as regression (regs = %d)\n%s", regs, strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "script_segments") || !strings.Contains(joined, "schema gap") {
		t.Errorf("missing schema-gap annotation:\n%s", joined)
	}
}

// TestCompareScriptCountersBothSides: when both reports carry the counters
// they are shown without the gap annotation and still never regress.
func TestCompareScriptCountersBothSides(t *testing.T) {
	base := report(1_000_000, 2_000_000, 0)
	base.Samples[0].ScriptSegments = 12
	base.Samples[0].SegmentsSkipped = 9_000
	cand := report(1_000_000, 2_000_000, 0)
	cand.Samples[0].ScriptSegments = 12
	cand.Samples[0].SegmentsSkipped = 100 // far fewer skips: still not a regression
	lines, regs := compare(base, cand, 0.10)
	if regs != 0 {
		t.Fatalf("counters must be informational (regs = %d)", regs)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "segments_skipped") || strings.Contains(joined, "schema gap") {
		t.Errorf("counter lines wrong:\n%s", joined)
	}
}
