// benchcmp compares two bench-smoke reports (see `make bench-smoke` and
// harness.BenchSmokeReport) and fails when the candidate regresses a
// runtime metric beyond a relative threshold.
//
// Usage:
//
//	benchcmp [-threshold 0.10] baseline.json candidate.json
//
// Samples are matched by thread count; every *_ns runtime field is
// compared, and so are the per-phase wall-time sums under phase_ns when
// both reports carry them. A candidate more than threshold slower on any
// metric exits 1 (the bench-compare CI gate); missing counterparts are
// reported but not fatal, so reports from different thread lists still
// compare on their overlap.
//
// Schema drift is tolerated in both directions: fields absent from one
// report (older baselines predate the script counters; future reports may
// add more) decode to zero and are annotated as a schema gap instead of
// compared, so bench-compare keeps working across the boundary where a
// counter was introduced.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"gatesim/internal/harness"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "relative slowdown that counts as a regression")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold F] baseline.json candidate.json")
		os.Exit(2)
	}
	base, err := readReport(flag.Arg(0))
	fail(err)
	cand, err := readReport(flag.Arg(1))
	fail(err)

	lines, regressions := compare(base, cand, *threshold)
	for _, l := range lines {
		fmt.Println(l)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d metric(s) regressed more than %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("benchcmp: no regression beyond %.0f%%\n", *threshold*100)
}

func readReport(path string) (harness.BenchSmokeReport, error) {
	var rep harness.BenchSmokeReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// compare renders a per-metric delta table and counts regressions: metrics
// where the candidate is more than threshold slower than the baseline.
// Metrics at 0 in the baseline (not measured) are skipped.
func compare(base, cand harness.BenchSmokeReport, threshold float64) (lines []string, regressions int) {
	byThreads := make(map[int]harness.BenchSmokePoint, len(base.Samples))
	for _, s := range base.Samples {
		byThreads[s.Threads] = s
	}
	check := func(name string, baseNS, candNS int64) {
		if baseNS <= 0 {
			return
		}
		ratio := float64(candNS)/float64(baseNS) - 1
		mark := ""
		if ratio > threshold {
			mark = "  REGRESSION"
			regressions++
		}
		lines = append(lines, fmt.Sprintf("%-28s %12d -> %12d  %+6.1f%%%s", name, baseNS, candNS, ratio*100, mark))
	}
	// info renders a non-runtime counter (script segments, skip counts):
	// informational only, never a regression, and tolerant of either side
	// missing the field — a sample written before the counter existed
	// decodes it as zero and is shown as a schema gap instead of compared.
	info := func(name string, baseV, candV int64) {
		switch {
		case baseV == 0 && candV == 0:
		case baseV == 0 || candV == 0:
			lines = append(lines, fmt.Sprintf("%-28s %12d -> %12d  (schema gap; not compared)", name, baseV, candV))
		default:
			lines = append(lines, fmt.Sprintf("%-28s %12d -> %12d", name, baseV, candV))
		}
	}
	for _, c := range cand.Samples {
		b, ok := byThreads[c.Threads]
		if !ok {
			lines = append(lines, fmt.Sprintf("t=%d: no baseline sample; skipped", c.Threads))
			continue
		}
		check(fmt.Sprintf("t=%d ours_sdf_ns", c.Threads), b.OursSDFNS, c.OursSDFNS)
		check(fmt.Sprintf("t=%d ours_unit_ns", c.Threads), b.OursUnitNS, c.OursUnitNS)
		check(fmt.Sprintf("t=%d part_sdf_ns", c.Threads), b.PartSDFNS, c.PartSDFNS)
		check(fmt.Sprintf("t=%d part_unit_ns", c.Threads), b.PartUnitNS, c.PartUnitNS)
		info(fmt.Sprintf("t=%d script_segments", c.Threads), b.ScriptSegments, c.ScriptSegments)
		info(fmt.Sprintf("t=%d segments_skipped", c.Threads), b.SegmentsSkipped, c.SegmentsSkipped)
		info(fmt.Sprintf("t=%d visits_watermark_only", c.Threads), b.VisitsWatermarkOnly, c.VisitsWatermarkOnly)
		// relax_nets is the retired predecessor of frontier_commits; old
		// baselines still carry it, so the info line's schema-gap rendering
		// keeps the boundary readable.
		info(fmt.Sprintf("t=%d relax_nets", c.Threads), b.RelaxedNets, c.RelaxedNets)
		info(fmt.Sprintf("t=%d frontier_commits", c.Threads), b.FrontierCommits, c.FrontierCommits)
		info(fmt.Sprintf("t=%d queries_saved", c.Threads), b.QueriesSaved, c.QueriesSaved)
		if b.SpeedupVsT1 != 0 || c.SpeedupVsT1 != 0 {
			lines = append(lines, fmt.Sprintf("%-28s %8.2fx -> %8.2fx",
				fmt.Sprintf("t=%d speedup_vs_t1", c.Threads), b.SpeedupVsT1, c.SpeedupVsT1))
		}
	}
	// The lane point (multi-stimulus lanes vs sequential scalar runs) is
	// rendered informationally: a report from before lane mode simply lacks
	// it, so a one-sided point is a schema gap, never a regression.
	switch {
	case base.Lane == nil && cand.Lane == nil:
	case base.Lane == nil || cand.Lane == nil:
		lines = append(lines, "lane point present on one side only (schema gap; not compared)")
	default:
		b, c := base.Lane, cand.Lane
		check(fmt.Sprintf("lanes=%d lane_run_ns", c.Lanes), b.LaneRunNS, c.LaneRunNS)
		check(fmt.Sprintf("lanes=%d scalar_run_ns", c.Lanes), b.ScalarRunNS, c.ScalarRunNS)
		info(fmt.Sprintf("lanes=%d visits_lane", c.Lanes), b.VisitsLane, c.VisitsLane)
		lines = append(lines, fmt.Sprintf("%-28s %9.2f -> %9.2f Mev*lane/s",
			fmt.Sprintf("lanes=%d lane_throughput", c.Lanes), b.LaneThroughput/1e6, c.LaneThroughput/1e6))
		lines = append(lines, fmt.Sprintf("%-28s %8.2fx -> %8.2fx",
			fmt.Sprintf("lanes=%d speedup_vs_scalar", c.Lanes), b.SpeedupVsScalar, c.SpeedupVsScalar))
	}
	if len(base.PhaseNS) > 0 && len(cand.PhaseNS) > 0 {
		phases := make([]string, 0, len(cand.PhaseNS))
		for name := range cand.PhaseNS {
			phases = append(phases, name)
		}
		sort.Strings(phases)
		for _, name := range phases {
			if baseNS, ok := base.PhaseNS[name]; ok {
				check("phase "+name, baseNS, cand.PhaseNS[name])
			}
		}
	}
	return lines, regressions
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}
