// vcddiff compares two VCD waveform files signal by signal and reports the
// first divergences — the regression tool for comparing simulator runs
// (e.g. different thread counts or executors, or this simulator against
// another one).
//
// Usage:
//
//	vcddiff a.vcd b.vcd [-max N] [-signals s1,s2]
//
// Exit status 0 when equivalent, 1 when differences were found.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gatesim/internal/logic"
	"gatesim/internal/vcd"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flag parsing, comparison, and report
// rendering behind injected streams, returning the process exit code
// (0 equivalent, 1 differences, 2 usage or I/O error) instead of exiting.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vcddiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxDiffs := fs.Int("max", 20, "maximum differences to print")
	sigFilter := fs.String("signals", "", "comma-separated subset of signals to compare")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: vcddiff a.vcd b.vcd [-max N] [-signals s1,s2]")
		return 2
	}
	diffs, err := diff(stdout, fs.Arg(0), fs.Arg(1), *sigFilter, *maxDiffs)
	if err != nil {
		fmt.Fprintln(stderr, "vcddiff:", err)
		return 2
	}
	if diffs > 0 {
		fmt.Fprintf(stdout, "%d difference(s)\n", diffs)
		return 1
	}
	fmt.Fprintln(stdout, "waveforms are equivalent")
	return 0
}

type wave struct {
	events map[string][]vcd.Change // by signal name (sig index rebound)
	names  []string
}

func load(path string) (*wave, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := vcd.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	w := &wave{events: map[string][]vcd.Change{}, names: r.Signals()}
	chs, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for _, c := range chs {
		name := w.names[c.Sig]
		// Collapse same-time re-changes (last wins) and drop no-op changes,
		// so semantically identical dumps with different verbosity compare
		// equal.
		evs := w.events[name]
		if n := len(evs); n > 0 && evs[n-1].Time == c.Time {
			evs[n-1].Val = c.Val
			if n > 1 && evs[n-2].Val == c.Val {
				evs = evs[:n-1]
			}
			w.events[name] = evs
			continue
		}
		if n := len(evs); n > 0 && evs[n-1].Val == c.Val {
			continue
		}
		w.events[name] = append(evs, c)
	}
	return w, nil
}

func diff(out io.Writer, pathA, pathB, sigFilter string, maxDiffs int) (int, error) {
	a, err := load(pathA)
	if err != nil {
		return 0, err
	}
	b, err := load(pathB)
	if err != nil {
		return 0, err
	}

	var names []string
	if sigFilter != "" {
		names = strings.Split(sigFilter, ",")
	} else {
		seen := map[string]bool{}
		for _, n := range a.names {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
		for _, n := range b.names {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
		sort.Strings(names)
	}

	diffs := 0
	report := func(format string, args ...any) {
		diffs++
		if diffs <= maxDiffs {
			fmt.Fprintf(out, format+"\n", args...)
		}
	}
	inA, inB := map[string]bool{}, map[string]bool{}
	for _, n := range a.names {
		inA[n] = true
	}
	for _, n := range b.names {
		inB[n] = true
	}
	for _, name := range names {
		switch {
		case !inA[name]:
			report("signal %s only in %s", name, pathB)
			continue
		case !inB[name]:
			report("signal %s only in %s", name, pathA)
			continue
		}
		ea, eb := a.events[name], b.events[name]
		n := len(ea)
		if len(eb) < n {
			n = len(eb)
		}
		for i := 0; i < n; i++ {
			if ea[i].Time != eb[i].Time || ea[i].Val != eb[i].Val {
				report("%s: event %d: %s vs %s", name, i, fmtEv(ea[i]), fmtEv(eb[i]))
				break
			}
		}
		if len(ea) != len(eb) && diffs < maxDiffs {
			report("%s: %d vs %d events", name, len(ea), len(eb))
		}
	}
	return diffs, nil
}

func fmtEv(c vcd.Change) string {
	return fmt.Sprintf("%d->%v", c.Time, logic.Value(c.Val))
}
