package main

import (
	"os"
	"path/filepath"
	"testing"

	"gatesim/internal/logic"
	"gatesim/internal/vcd"
)

func writeVCD(t *testing.T, dir, name string, f func(w *vcd.Writer)) string {
	t.Helper()
	path := filepath.Join(dir, name)
	file, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	w := vcd.NewWriter(file, "m", []string{"a", "b"})
	f(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffEqual(t *testing.T) {
	dir := t.TempDir()
	gen := func(w *vcd.Writer) {
		w.Change(0, 0, logic.V0)
		w.Change(10, 0, logic.V1)
		w.Change(10, 1, logic.V0)
		w.Change(20, 0, logic.V0)
	}
	a := writeVCD(t, dir, "a.vcd", gen)
	b := writeVCD(t, dir, "b.vcd", gen)
	n, err := diff(a, b, "", 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("diffs: %d", n)
	}
}

func TestDiffValueMismatch(t *testing.T) {
	dir := t.TempDir()
	a := writeVCD(t, dir, "a.vcd", func(w *vcd.Writer) {
		w.Change(10, 0, logic.V1)
	})
	b := writeVCD(t, dir, "b.vcd", func(w *vcd.Writer) {
		w.Change(10, 0, logic.V0)
	})
	n, err := diff(a, b, "", 20)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("value mismatch not detected")
	}
}

func TestDiffLengthMismatchAndFilter(t *testing.T) {
	dir := t.TempDir()
	a := writeVCD(t, dir, "a.vcd", func(w *vcd.Writer) {
		w.Change(10, 0, logic.V1)
		w.Change(10, 1, logic.V1)
		w.Change(20, 0, logic.V0)
	})
	b := writeVCD(t, dir, "b.vcd", func(w *vcd.Writer) {
		w.Change(10, 0, logic.V1)
		w.Change(10, 1, logic.V1)
	})
	n, err := diff(a, b, "", 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("diffs: %d", n)
	}
	// Filtering to the matching signal hides the difference.
	n, err = diff(a, b, "b", 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("filtered diffs: %d", n)
	}
}

func TestDiffMissingFile(t *testing.T) {
	if _, err := diff("/nope.vcd", "/nope2.vcd", "", 5); err == nil {
		t.Error("missing file must error")
	}
}
