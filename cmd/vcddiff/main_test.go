package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"gatesim/internal/logic"
	"gatesim/internal/vcd"
)

func writeVCD(t *testing.T, dir, name string, f func(w *vcd.Writer)) string {
	t.Helper()
	path := filepath.Join(dir, name)
	file, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	w := vcd.NewWriter(file, "m", []string{"a", "b"})
	f(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffEqual(t *testing.T) {
	dir := t.TempDir()
	gen := func(w *vcd.Writer) {
		w.Change(0, 0, logic.V0)
		w.Change(10, 0, logic.V1)
		w.Change(10, 1, logic.V0)
		w.Change(20, 0, logic.V0)
	}
	a := writeVCD(t, dir, "a.vcd", gen)
	b := writeVCD(t, dir, "b.vcd", gen)
	n, err := diff(io.Discard, a, b, "", 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("diffs: %d", n)
	}
}

func TestDiffValueMismatch(t *testing.T) {
	dir := t.TempDir()
	a := writeVCD(t, dir, "a.vcd", func(w *vcd.Writer) {
		w.Change(10, 0, logic.V1)
	})
	b := writeVCD(t, dir, "b.vcd", func(w *vcd.Writer) {
		w.Change(10, 0, logic.V0)
	})
	n, err := diff(io.Discard, a, b, "", 20)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("value mismatch not detected")
	}
}

func TestDiffLengthMismatchAndFilter(t *testing.T) {
	dir := t.TempDir()
	a := writeVCD(t, dir, "a.vcd", func(w *vcd.Writer) {
		w.Change(10, 0, logic.V1)
		w.Change(10, 1, logic.V1)
		w.Change(20, 0, logic.V0)
	})
	b := writeVCD(t, dir, "b.vcd", func(w *vcd.Writer) {
		w.Change(10, 0, logic.V1)
		w.Change(10, 1, logic.V1)
	})
	n, err := diff(io.Discard, a, b, "", 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("diffs: %d", n)
	}
	// Filtering to the matching signal hides the difference.
	n, err = diff(io.Discard, a, b, "b", 20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("filtered diffs: %d", n)
	}
}

func TestDiffMissingFile(t *testing.T) {
	if _, err := diff(io.Discard, "/nope.vcd", "/nope2.vcd", "", 5); err == nil {
		t.Error("missing file must error")
	}
}

// TestRunExitCodes pins the CLI contract through the run() seam: exit 0 on
// equivalent waveforms, 1 when differences were found, 2 on usage or I/O
// errors — the codes scripts branch on.
func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	gen := func(w *vcd.Writer) {
		w.Change(0, 0, logic.V0)
		w.Change(10, 0, logic.V1)
	}
	a := writeVCD(t, dir, "a.vcd", gen)
	b := writeVCD(t, dir, "b.vcd", gen)
	c := writeVCD(t, dir, "c.vcd", func(w *vcd.Writer) {
		w.Change(0, 0, logic.V0)
		w.Change(10, 0, logic.V0)
	})

	for _, tc := range []struct {
		name string
		args []string
		code int
	}{
		{"equivalent", []string{a, b}, 0},
		{"different", []string{a, c}, 1},
		{"missing-arg", []string{a}, 2},
		{"bad-flag", []string{"-nope", a, b}, 2},
		{"missing-file", []string{a, filepath.Join(dir, "nope.vcd")}, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.code {
				t.Errorf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					tc.args, got, tc.code, stdout.String(), stderr.String())
			}
		})
	}
}

// TestRunGoldenOutput pins the report text: the divergence lines and the
// trailing summary go to stdout, byte-for-byte, so downstream tooling can
// parse them.
func TestRunGoldenOutput(t *testing.T) {
	dir := t.TempDir()
	a := writeVCD(t, dir, "a.vcd", func(w *vcd.Writer) {
		w.Change(10, 0, logic.V1)
		w.Change(20, 1, logic.V1)
	})
	b := writeVCD(t, dir, "b.vcd", func(w *vcd.Writer) {
		w.Change(10, 0, logic.V0)
		w.Change(20, 1, logic.V1)
	})

	var stdout, stderr bytes.Buffer
	if got := run([]string{a, b}, &stdout, &stderr); got != 1 {
		t.Fatalf("run = %d, want 1; stderr: %s", got, stderr.String())
	}
	want := "a: event 0: 10->1 vs 10->0\n1 difference(s)\n"
	if stdout.String() != want {
		t.Errorf("stdout = %q, want %q", stdout.String(), want)
	}

	stdout.Reset()
	if got := run([]string{a, a}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d, want 0", got)
	}
	if want := "waveforms are equivalent\n"; stdout.String() != want {
		t.Errorf("stdout = %q, want %q", stdout.String(), want)
	}
}
