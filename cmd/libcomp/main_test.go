package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gatesim/internal/liberty"
)

// TestBuiltinLibraryOutput runs the default compilation path and checks the
// report's structure against the built-in library: the library name, the
// exact cell count, and — with -per-cell — one table row per cell. Timing
// and memory numbers vary run to run, so the golden check is structural.
func TestBuiltinLibraryOutput(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", 0, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	lib := liberty.MustBuiltin()
	wantHeader := fmt.Sprintf("library %q: %d cells compiled in", lib.Name, len(lib.Cells))
	if !strings.Contains(out, wantHeader) {
		t.Errorf("missing header %q in output:\n%s", wantHeader, out)
	}
	if !strings.Contains(out, "extended truth tables:") {
		t.Errorf("missing truth-table summary:\n%s", out)
	}
	for _, cell := range []string{"INV", "NAND2", "XOR2"} {
		if !strings.Contains(out, cell) {
			t.Errorf("per-cell table missing %s:\n%s", cell, out)
		}
	}
	// 2 summary lines + 1 table header + one row per cell.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if want := 3 + len(lib.Cells); len(lines) != want {
		t.Errorf("output has %d lines, want %d", len(lines), want)
	}
}

func TestSyntheticLibrary(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", 25, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "25 cells compiled") {
		t.Errorf("synthetic run did not report 25 cells:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "/nonexistent.lib", 0, false); err == nil {
		t.Error("missing library file must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.lib")
	if err := os.WriteFile(bad, []byte("library (broken) { cell (X) {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&sb, bad, 0, false); err == nil {
		t.Error("malformed library must fail to parse")
	}
}
