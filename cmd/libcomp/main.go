// libcomp runs the paper's stability-aware library compilation (§III-B) on
// a Liberty library and reports extended-truth-table statistics — the tool
// behind the "1000 cells in 1 second, 50 MB" claim.
//
// Usage:
//
//	libcomp [-lib cells.lib] [-synth N] [-per-cell]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"gatesim/internal/gen"
	"gatesim/internal/liberty"
	"gatesim/internal/truthtab"
)

func main() {
	var (
		libFile = flag.String("lib", "", "Liberty library file (default: built-in library)")
		synth   = flag.Int("synth", 0, "compile a generated synthetic library with N cells instead")
		perCell = flag.Bool("per-cell", false, "print one line per cell")
	)
	flag.Parse()
	if err := run(os.Stdout, *libFile, *synth, *perCell); err != nil {
		fmt.Fprintln(os.Stderr, "libcomp:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, libFile string, synth int, perCell bool) error {
	var (
		lib *liberty.Library
		err error
	)
	switch {
	case synth > 0:
		lib, err = liberty.Parse(gen.LibrarySource(synth, 1))
	case libFile != "":
		var src []byte
		if src, err = os.ReadFile(libFile); err != nil {
			return err
		}
		lib, err = liberty.Parse(string(src))
	default:
		lib, err = liberty.Builtin()
	}
	if err != nil {
		return err
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	cl, err := truthtab.CompileLibrary(lib)
	if err != nil {
		return err
	}
	dur := time.Since(start)
	runtime.ReadMemStats(&after)

	st := cl.Stats()
	fmt.Fprintf(w, "library %q: %d cells compiled in %v\n", lib.Name, st.Cells, dur.Round(time.Microsecond))
	fmt.Fprintf(w, "extended truth tables: %d entries, %.2f MB payload (heap grew %.2f MB)\n",
		st.Entries, float64(st.Bytes)/1e6, float64(after.HeapAlloc-before.HeapAlloc)/1e6)

	if perCell {
		names := make([]string, 0, len(cl.Tables))
		for n := range cl.Tables {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "%-16s %8s %8s %6s %6s %6s\n", "cell", "entries", "bytes", "in", "out", "state")
		for _, n := range names {
			t := cl.Tables[n]
			fmt.Fprintf(w, "%-16s %8d %8d %6d %6d %6d\n", n, t.Size(), t.Bytes(), t.NumInputs, t.NumOutputs, t.NumStates)
		}
	}
	return nil
}
