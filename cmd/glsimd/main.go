// glsimd is the resident simulation server: it keeps lowered plans in a
// content-addressed cache and runs concurrent streamed sessions against
// them over an NDJSON HTTP API (see internal/serve).
//
// Server mode:
//
//	glsimd [-addr :7473] [-debug-addr :6060] [-plan-cache N]
//	       [-max-concurrent N] [-rate R] [-burst N] [-queue N]
//	       [-queue-timeout D] [-drain-timeout D] [-snapshot-every N]
//	       [-max-retries N] [-default-deadline D]
//
// SIGTERM/SIGINT drains gracefully: in-flight sessions finish (within
// -drain-timeout), new arrivals get 503, then the process exits 0.
//
// Client mode (for scripts and smoke tests — POSTs one session and streams
// its NDJSON to stdout, exiting non-zero if the stream ends in an error):
//
//	glsimd -client http://127.0.0.1:7473 -preset aes128 [-seed N]
//	       [-cycles N] [-scale F] [-mode auto|serial|parallel|manycore]
//	       [-threads N] [-slice PS] [-lanes L]
//
// With -lanes L (L > 1) the client requests a multi-stimulus lane session:
// L independently seeded vectors of the preset stimulus in one lane-mode
// pass, streamed as merged lane events (changed-lane mask + per-lane
// values). Preset sessions only; lane sessions cannot suspend or resume.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gatesim/internal/obs"
	"gatesim/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":7473", "HTTP listen address (host-less addr binds all interfaces)")
		debugAddr = flag.String("debug-addr", "", "serve /debug/metrics, expvar and pprof on this address")
		cacheSize = flag.Int("plan-cache", 8, "lowered-plan cache capacity")

		maxConc      = flag.Int("max-concurrent", 0, "max concurrently running sessions (0 = default)")
		rate         = flag.Float64("rate", 0, "session admissions per second (0 = default, negative = unlimited)")
		burst        = flag.Float64("burst", 0, "admission token-bucket burst (0 = default)")
		queue        = flag.Int("queue", 0, "max sessions waiting for a slot (0 = default)")
		queueTimeout = flag.Duration("queue-timeout", 0, "max time a session waits for a slot (0 = default)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight sessions on shutdown")

		snapshotEvery = flag.Int("snapshot-every", 0, "checkpoint every N slices (0 = default, negative = off)")
		maxRetries    = flag.Int("max-retries", 0, "restore-and-retry attempts after a session fault (0 = default)")
		deadline      = flag.Duration("default-deadline", 0, "default per-session deadline (0 = server default)")

		client  = flag.String("client", "", "run as a client against this server URL instead of serving")
		preset  = flag.String("preset", "", "client: preset design family")
		seed    = flag.Int64("seed", 1, "client: design + stimulus seed")
		cycles  = flag.Int("cycles", 0, "client: stimulus cycles (0 = server default)")
		scale   = flag.Float64("scale", 0, "client: preset scale factor (0 = server default)")
		mode    = flag.String("mode", "", "client: execution mode")
		threads = flag.Int("threads", 0, "client: worker threads")
		slice   = flag.Int64("slice", 0, "client: streaming slice length in ps")
		lanes   = flag.Int("lanes", 0, "client: multi-stimulus lane count (0 = scalar session)")
	)
	flag.Parse()

	if *client != "" {
		os.Exit(runClient(*client, &serve.SessionRequest{
			Preset: *preset, Seed: *seed, Cycles: *cycles, Scale: *scale,
			Mode: *mode, Threads: *threads, SlicePS: *slice, Lanes: *lanes,
		}))
	}

	cfg := serve.Config{
		CacheSize: *cacheSize,
		Admission: serve.AdmissionConfig{
			MaxConcurrent: *maxConc,
			Rate:          *rate,
			Burst:         *burst,
			MaxQueue:      *queue,
			QueueTimeout:  *queueTimeout,
		},
		DrainTimeout: *drainTimeout,
		Registry:     obs.NewRegistry(),
	}
	cfg.Limits.SnapshotEverySlices = *snapshotEvery
	cfg.Limits.MaxRetries = *maxRetries
	cfg.Limits.Deadline = *deadline
	if *debugAddr != "" {
		ds, err := obs.StartDebug(*debugAddr, cfg.Registry)
		if err != nil {
			fmt.Fprintln(os.Stderr, "glsimd:", err)
			os.Exit(1)
		}
		defer ds.Close()
		cfg.Debug = ds
		fmt.Fprintf(os.Stderr, "glsimd: debug endpoint at http://%s/debug/metrics\n", ds.Addr())
	}
	sv := serve.NewServer(cfg)

	httpSrv := &http.Server{Addr: *addr, Handler: sv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "glsimd: serving on %s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "glsimd:", err)
		os.Exit(1)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "glsimd: %v: draining\n", sig)
	}

	// Drain first so in-flight session streams finish cleanly, then shut the
	// listener down (Shutdown waits for the handlers, which are done by now).
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	if err := sv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "glsimd: drain:", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "glsimd: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "glsimd: drained, bye")
}

// runClient posts one session and copies its NDJSON stream to stdout.
// Returns the process exit code: 0 on a done/suspended terminal line,
// 1 on an error line or failed stream, 2 on a non-200 response.
func runClient(base string, req *serve.SessionRequest) int {
	body, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "glsimd:", err)
		return 1
	}
	resp, err := http.Post(strings.TrimRight(base, "/")+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "glsimd:", err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "glsimd: server returned %s", resp.Status)
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			fmt.Fprintf(os.Stderr, " (Retry-After: %ss)", ra)
		}
		fmt.Fprintln(os.Stderr)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			fmt.Fprintln(os.Stderr, "glsimd:", sc.Text())
		}
		return 2
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	terminal := ""
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		fmt.Println(line)
		var l struct {
			Type string `json:"type"`
		}
		if json.Unmarshal(sc.Bytes(), &l) == nil {
			terminal = l.Type
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "glsimd: stream:", err)
		return 1
	}
	switch terminal {
	case "done", "suspended":
		return 0
	case "error":
		fmt.Fprintln(os.Stderr, "glsimd: session failed (see error line)")
		return 1
	default:
		fmt.Fprintln(os.Stderr, "glsimd: stream ended without a terminal line")
		return 1
	}
}
