package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gatesim/internal/harness"
)

// TestRunFig8JSONSmoke drives the whole tool end to end on a tiny preset
// and checks the machine-readable report parses with the fields CI's
// bench-compare step relies on.
func TestRunFig8JSONSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-fig8", "-preset", "blabla", "-scale", "0.005",
		"-cycles", "8", "-threadlist", "1", "-json", out,
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\nstderr:\n%s", args, err, stderr.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep harness.BenchSmokeReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Preset != "blabla" || rep.Cycles != 8 {
		t.Errorf("report header %q/%d, want blabla/8", rep.Preset, rep.Cycles)
	}
	if len(rep.Samples) != 1 {
		t.Fatalf("%d samples, want 1", len(rep.Samples))
	}
	s := rep.Samples[0]
	if s.Threads != 1 {
		t.Errorf("sample threads = %d, want 1", s.Threads)
	}
	if s.OursSDFNS <= 0 || s.PartSDFNS <= 0 {
		t.Errorf("non-positive runtimes: ours=%d part=%d", s.OursSDFNS, s.PartSDFNS)
	}
	if s.Sweeps <= 0 {
		t.Errorf("sweeps = %d, want > 0", s.Sweeps)
	}
	if s.VisitsComb1 <= 0 {
		t.Errorf("visits_comb1 = %d; the kernel split is missing from the report", s.VisitsComb1)
	}
	if rep.Metrics == nil || len(rep.PhaseNS) == 0 {
		t.Error("report is missing the metric snapshot / phase breakdown")
	}
	if !strings.Contains(stdout.String(), "fig8 t=1") {
		t.Errorf("stdout missing fig8 summary line:\n%s", stdout.String())
	}
}

// TestRunUsageError checks the CLI error seam: no mode flag is a usage
// error, not a crash or a silent success.
func TestRunUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(nil, &stdout, &stderr)
	if err == nil {
		t.Fatal("run with no mode must fail")
	}
	if !strings.Contains(stderr.String(), "-fig8") {
		t.Errorf("usage text not printed:\n%s", stderr.String())
	}
}
