// experiments regenerates every table and figure of the paper's evaluation
// on this repository's substrates. See EXPERIMENTS.md for the mapping and
// recorded results.
//
// Usage:
//
//	experiments -table1 [-scale S]
//	experiments -table2 [-scale S] [-presets a,b] [-short N] [-threads T]
//	experiments -fig8   [-preset aes256] [-scale S] [-cycles N] [-threadlist 1,2,4,8] [-json FILE]
//	experiments -libcomp [-cells 1000]
//	experiments -all
//
// With -json FILE, -fig8 additionally writes the machine-readable
// bench-smoke report (runtimes plus engine scheduling counters) to FILE;
// `make bench-smoke` uses this to produce BENCH_smoke.json.
//
// Observability flags apply to the simulator runs inside -table2/-fig8:
// -trace FILE records a Chrome/Perfetto trace-event JSON, -metrics FILE
// dumps the full metric snapshot, and -debug-addr ADDR serves live
// metric/expvar/pprof introspection (binds localhost unless a host is
// given).
//
// -timeout D bounds the whole invocation: when it expires the running
// experiment is cancelled at the next sweep/round boundary and the process
// exits non-zero with the structured error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"gatesim/internal/harness"
	"gatesim/internal/obs"
	"gatesim/internal/sim"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "regenerate Table I (benchmark statistics)")
		table2  = flag.Bool("table2", false, "regenerate Table II (runtime comparison)")
		fig8    = flag.Bool("fig8", false, "regenerate Figure 8 (thread scalability)")
		libcomp = flag.Bool("libcomp", false, "measure the library-compilation claim")
		par     = flag.Bool("parallelism", false, "report hardware-independent parallelism metrics")
		all     = flag.Bool("all", false, "run everything")

		scale      = flag.Float64("scale", 0.01, "design scale relative to the paper")
		seed       = flag.Int64("seed", 1, "generation seed")
		presets    = flag.String("presets", "", "comma-separated preset subset for -table2")
		shortCyc   = flag.Int("short", 200, "short-trace cycles (paper: 1000)")
		threads    = flag.Int("threads", runtime.GOMAXPROCS(0), "thread count for the multicore column")
		fig8Preset = flag.String("preset", "aes256", "design for -fig8 (paper: aes256 and leon2)")
		fig8Cycles = flag.Int("cycles", 200, "cycles for -fig8")
		threadList = flag.String("threadlist", "1,2,4,8", "thread counts for -fig8")
		jsonOut    = flag.String("json", "", "also write the -fig8 bench-smoke report to this file")
		cells      = flag.Int("cells", 1000, "library size for -libcomp")
		timeout    = flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")

		tracePath = flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON of -table2/-fig8 runs to this file")
		metrics   = flag.String("metrics", "", "write the full metric snapshot as JSON to this file")
		debugAddr = flag.String("debug-addr", "", "serve /debug/metrics, expvar and pprof on this address (host-less addr binds localhost)")
	)
	flag.Parse()
	if !(*table1 || *table2 || *fig8 || *libcomp || *par || *all) {
		flag.Usage()
		os.Exit(2)
	}
	if *all {
		*table1, *table2, *fig8, *libcomp, *par = true, true, true, true, true
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var (
		reg *obs.Registry
		tr  *obs.Trace
	)
	if *metrics != "" || *debugAddr != "" {
		reg = obs.NewRegistry()
	}
	if *tracePath != "" {
		tr = obs.NewTrace()
	}
	if *debugAddr != "" {
		ds, err := obs.StartDebug(*debugAddr, reg)
		fail(err)
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "experiments: debug endpoint at http://%s/debug/metrics\n", ds.Addr())
	}

	if *table1 {
		rows, err := harness.Table1(*scale, *seed)
		fail(err)
		fmt.Print(harness.FormatTable1(rows, *scale))
		fmt.Println()
	}
	if *table2 {
		var names []string
		if *presets != "" {
			names = strings.Split(*presets, ",")
		}
		rows, err := harness.Table2(ctx, harness.Table2Config{
			Scale: *scale, Presets: names,
			ShortCycles: *shortCyc, Threads: *threads, Seed: *seed,
			Metrics: reg, Trace: tr,
		})
		fail(err)
		fmt.Print(harness.FormatTable2(rows, *threads))
		fmt.Println()
	}
	if *fig8 {
		var ths []int
		for _, s := range strings.Split(*threadList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			fail(err)
			ths = append(ths, n)
		}
		cfg := harness.Fig8Config{
			Preset: *fig8Preset, Scale: *scale, Cycles: *fig8Cycles,
			Threads: ths, Seed: *seed,
			Metrics: reg, Trace: tr,
		}
		if *jsonOut != "" {
			rep, err := harness.BenchSmoke(ctx, cfg)
			fail(err)
			f, err := os.Create(*jsonOut)
			fail(err)
			fail(harness.WriteBenchSmoke(f, rep))
			fail(f.Close())
			fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", *jsonOut)
			for _, s := range rep.Samples {
				fmt.Printf("fig8 t=%d ours-sdf=%.3fs part-sdf=%.3fs spawns=%d rounds=%d wakes=%d parks=%d fused=%d\n",
					s.Threads, float64(s.OursSDFNS)/1e9, float64(s.PartSDFNS)/1e9,
					s.PoolSpawned, s.PoolRounds, s.PoolWakes, s.PoolParks, s.LevelsFused)
			}
		} else {
			pts, err := harness.Fig8(ctx, cfg)
			fail(err)
			fmt.Print(harness.FormatFig8(*fig8Preset, pts))
			fmt.Println()
		}
	}
	if *par {
		var rows []harness.ParallelismRow
		for _, name := range []string{"blabla", "picorv32a", "aes128", "aes256", "jpeg_encoder"} {
			r, err := harness.Parallelism(ctx, name, *scale, 50, *seed)
			fail(err)
			rows = append(rows, r)
		}
		fmt.Print(harness.FormatParallelism(rows))
		fmt.Println()
	}
	if *libcomp {
		r, err := harness.Libcomp(*cells, *seed)
		fail(err)
		fmt.Print(harness.FormatLibcomp(r))
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		fail(err)
		fail(tr.WriteJSON(f))
		fail(f.Close())
		fmt.Fprintf(os.Stderr, "experiments: wrote trace (%d events) to %s — open in ui.perfetto.dev\n", tr.Len(), *tracePath)
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		fail(err)
		fail(reg.WriteReport(f))
		fail(f.Close())
		fmt.Fprintf(os.Stderr, "experiments: wrote metric report to %s\n", *metrics)
	}
}

func fail(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "experiments:", err)
	var se *sim.SimError
	if errors.As(err, &se) {
		if se.Oscillation != nil {
			fmt.Fprintln(os.Stderr, "experiments:", se.Oscillation.Summary())
		}
		if se.Panic != nil && len(se.Panic.Stack) > 0 {
			fmt.Fprintf(os.Stderr, "%s\n", se.Panic.Stack)
		}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "experiments: run exceeded -timeout")
	}
	os.Exit(1)
}
