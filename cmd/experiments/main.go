// experiments regenerates every table and figure of the paper's evaluation
// on this repository's substrates. See EXPERIMENTS.md for the mapping and
// recorded results.
//
// Usage:
//
//	experiments -table1 [-scale S]
//	experiments -table2 [-scale S] [-presets a,b] [-short N] [-threads T]
//	experiments -fig8   [-preset aes256] [-scale S] [-cycles N] [-threadlist 1,2,4,8] [-lanes L] [-json FILE]
//	experiments -libcomp [-cells 1000]
//	experiments -all
//
// With -json FILE, -fig8 additionally writes the machine-readable
// bench-smoke report (runtimes plus engine scheduling counters) to FILE;
// `make bench-smoke` uses this to produce BENCH_smoke.json. With -lanes L
// (L > 1), -fig8 also measures one multi-stimulus lane point — a single
// L-lane run against L sequential scalar runs of the same traces — and
// records it in the report's "lane" field.
//
// Observability flags apply to the simulator runs inside -table2/-fig8:
// -trace FILE records a Chrome/Perfetto trace-event JSON, -metrics FILE
// dumps the full metric snapshot, and -debug-addr ADDR serves live
// metric/expvar/pprof introspection (binds localhost unless a host is
// given).
//
// -timeout D bounds the whole invocation: when it expires the running
// experiment is cancelled at the next sweep/round boundary and the process
// exits non-zero with the structured error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"gatesim/internal/harness"
	"gatesim/internal/obs"
	"gatesim/internal/sim"
)

// errUsage signals a command-line error (exit code 2, usage already printed).
var errUsage = errors.New("usage")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err == nil {
		return
	}
	if errors.Is(err, errUsage) || errors.Is(err, flag.ErrHelp) {
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "experiments:", err)
	var se *sim.SimError
	if errors.As(err, &se) {
		if se.Oscillation != nil {
			fmt.Fprintln(os.Stderr, "experiments:", se.Oscillation.Summary())
		}
		if se.Panic != nil && len(se.Panic.Stack) > 0 {
			fmt.Fprintf(os.Stderr, "%s\n", se.Panic.Stack)
		}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "experiments: run exceeded -timeout")
	}
	os.Exit(1)
}

// run is the whole tool behind a testable seam: flag parsing against args,
// all output on the given writers, every failure returned instead of
// exiting.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table1  = fs.Bool("table1", false, "regenerate Table I (benchmark statistics)")
		table2  = fs.Bool("table2", false, "regenerate Table II (runtime comparison)")
		fig8    = fs.Bool("fig8", false, "regenerate Figure 8 (thread scalability)")
		libcomp = fs.Bool("libcomp", false, "measure the library-compilation claim")
		par     = fs.Bool("parallelism", false, "report hardware-independent parallelism metrics")
		all     = fs.Bool("all", false, "run everything")

		scale      = fs.Float64("scale", 0.01, "design scale relative to the paper")
		seed       = fs.Int64("seed", 1, "generation seed")
		presets    = fs.String("presets", "", "comma-separated preset subset for -table2")
		shortCyc   = fs.Int("short", 200, "short-trace cycles (paper: 1000)")
		threads    = fs.Int("threads", runtime.GOMAXPROCS(0), "thread count for the multicore column")
		fig8Preset = fs.String("preset", "aes256", "design for -fig8 (paper: aes256 and leon2)")
		fig8Cycles = fs.Int("cycles", 200, "cycles for -fig8")
		threadList = fs.String("threadlist", "1,2,4,8", "thread counts for -fig8")
		lanes      = fs.Int("lanes", 0, "also measure a multi-stimulus lane point for -fig8 (0 = off)")
		jsonOut    = fs.String("json", "", "also write the -fig8 bench-smoke report to this file")
		cells      = fs.Int("cells", 1000, "library size for -libcomp")
		timeout    = fs.Duration("timeout", 0, "abort the run after this long (0 = no limit)")

		tracePath = fs.String("trace", "", "write a Chrome/Perfetto trace-event JSON of -table2/-fig8 runs to this file")
		metrics   = fs.String("metrics", "", "write the full metric snapshot as JSON to this file")
		debugAddr = fs.String("debug-addr", "", "serve /debug/metrics, expvar and pprof on this address (host-less addr binds localhost)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !(*table1 || *table2 || *fig8 || *libcomp || *par || *all) {
		fs.Usage()
		return errUsage
	}
	if *all {
		*table1, *table2, *fig8, *libcomp, *par = true, true, true, true, true
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var (
		reg *obs.Registry
		tr  *obs.Trace
	)
	if *metrics != "" || *debugAddr != "" {
		reg = obs.NewRegistry()
	}
	if *tracePath != "" {
		tr = obs.NewTrace()
	}
	if *debugAddr != "" {
		ds, err := obs.StartDebug(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer ds.Close()
		fmt.Fprintf(stderr, "experiments: debug endpoint at http://%s/debug/metrics\n", ds.Addr())
	}

	if *table1 {
		rows, err := harness.Table1(*scale, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, harness.FormatTable1(rows, *scale))
		fmt.Fprintln(stdout)
	}
	if *table2 {
		var names []string
		if *presets != "" {
			names = strings.Split(*presets, ",")
		}
		rows, err := harness.Table2(ctx, harness.Table2Config{
			Scale: *scale, Presets: names,
			ShortCycles: *shortCyc, Threads: *threads, Seed: *seed,
			Metrics: reg, Trace: tr,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, harness.FormatTable2(rows, *threads))
		fmt.Fprintln(stdout)
	}
	if *fig8 {
		var ths []int
		for _, s := range strings.Split(*threadList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return err
			}
			ths = append(ths, n)
		}
		cfg := harness.Fig8Config{
			Preset: *fig8Preset, Scale: *scale, Cycles: *fig8Cycles,
			Threads: ths, Seed: *seed,
			Metrics: reg, Trace: tr,
		}
		var laneRes *harness.LaneBenchResult
		if *lanes > 1 {
			r, err := harness.LaneBench(ctx, harness.LaneBenchConfig{
				Preset: *fig8Preset, Scale: *scale, Cycles: *fig8Cycles,
				Lanes: *lanes, Threads: 1, Seed: *seed,
				Metrics: reg, Trace: tr,
			})
			if err != nil {
				return err
			}
			laneRes = &r
		}
		if *jsonOut != "" {
			rep, err := harness.BenchSmoke(ctx, cfg)
			if err != nil {
				return err
			}
			if laneRes != nil {
				pt := laneRes.Point()
				rep.Lane = &pt
			}
			f, err := os.Create(*jsonOut)
			if err != nil {
				return err
			}
			if err := harness.WriteBenchSmoke(f, rep); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "experiments: wrote %s\n", *jsonOut)
			for _, s := range rep.Samples {
				fmt.Fprintf(stdout, "fig8 t=%d ours-sdf=%.3fs part-sdf=%.3fs spawns=%d rounds=%d wakes=%d parks=%d fused=%d comb1=%d seq=%d\n",
					s.Threads, float64(s.OursSDFNS)/1e9, float64(s.PartSDFNS)/1e9,
					s.PoolSpawned, s.PoolRounds, s.PoolWakes, s.PoolParks, s.LevelsFused,
					s.VisitsComb1, s.VisitsSeq)
			}
			if laneRes != nil {
				fmt.Fprintf(stdout, "lanes n=%d lane=%.3fs scalar=%.3fs visits_lane=%d throughput=%.2fMev*lane/s speedup=%.2fx\n",
					laneRes.Lanes, laneRes.LaneWall.Seconds(), laneRes.ScalarWall.Seconds(),
					laneRes.VisitsLane, laneRes.LaneThroughput/1e6, laneRes.Speedup)
			}
		} else {
			pts, err := harness.Fig8(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, harness.FormatFig8(*fig8Preset, pts))
			fmt.Fprintln(stdout)
			if laneRes != nil {
				fmt.Fprint(stdout, harness.FormatLaneBench(*fig8Preset, []harness.LaneBenchResult{*laneRes}))
				fmt.Fprintln(stdout)
			}
		}
	}
	if *par {
		var rows []harness.ParallelismRow
		for _, name := range []string{"blabla", "picorv32a", "aes128", "aes256", "jpeg_encoder"} {
			r, err := harness.Parallelism(ctx, name, *scale, 50, *seed)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		fmt.Fprint(stdout, harness.FormatParallelism(rows))
		fmt.Fprintln(stdout)
	}
	if *libcomp {
		r, err := harness.Libcomp(*cells, *seed)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, harness.FormatLibcomp(r))
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := tr.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "experiments: wrote trace (%d events) to %s — open in ui.perfetto.dev\n", tr.Len(), *tracePath)
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			return err
		}
		if err := reg.WriteReport(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "experiments: wrote metric report to %s\n", *metrics)
	}
	return nil
}
