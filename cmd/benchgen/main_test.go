package main

import (
	"os"
	"path/filepath"
	"testing"

	"gatesim/internal/liberty"
	"gatesim/internal/netlist"
	"gatesim/internal/sdf"
	"gatesim/internal/vcd"
)

func TestBenchgenRun(t *testing.T) {
	dir := t.TempDir()
	if err := run("picorv32a", 0.004, 1, 20, 0.5, 8, dir); err != nil {
		t.Fatal(err)
	}
	// All three artifacts must exist and parse with our own readers.
	vSrc, err := os.ReadFile(filepath.Join(dir, "picorv32a.v"))
	if err != nil {
		t.Fatal(err)
	}
	nl, err := netlist.ParseVerilog(string(vSrc), liberty.MustBuiltin())
	if err != nil {
		t.Fatalf("emitted verilog invalid: %v", err)
	}
	sdfSrc, err := os.ReadFile(filepath.Join(dir, "picorv32a.sdf"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := sdf.Parse(string(sdfSrc))
	if err != nil {
		t.Fatalf("emitted SDF invalid: %v", err)
	}
	if _, err := sdf.Apply(f, nl, sdf.Delay{Rise: 1, Fall: 1}); err != nil {
		t.Fatalf("emitted SDF does not apply: %v", err)
	}
	vcdF, err := os.Open(filepath.Join(dir, "picorv32a.vcd"))
	if err != nil {
		t.Fatal(err)
	}
	defer vcdF.Close()
	r, err := vcd.NewReader(vcdF)
	if err != nil {
		t.Fatalf("emitted VCD invalid: %v", err)
	}
	if len(r.Signals()) != len(nl.PortsIn) {
		t.Errorf("VCD signals %d, want %d", len(r.Signals()), len(nl.PortsIn))
	}
	chs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(chs) == 0 {
		t.Error("no stimulus events written")
	}
}

func TestBenchgenUnknownPreset(t *testing.T) {
	if err := run("nope", 0.01, 1, 10, 0.5, 0, t.TempDir()); err == nil {
		t.Error("unknown preset must fail")
	}
}
