// benchgen emits a synthetic benchmark: a structural-Verilog netlist, a
// toy-STA SDF annotation and a VCD stimulus file, ready for glsim. Presets
// mirror the paper's Table I designs at a configurable scale.
//
// Usage:
//
//	benchgen -preset aes128 -scale 0.01 -cycles 1000 -af 0.8 -o outdir
//	benchgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gatesim/internal/gen"
	"gatesim/internal/netlist"
	"gatesim/internal/vcd"
)

func main() {
	var (
		preset = flag.String("preset", "blabla", "benchmark preset (see -list)")
		scale  = flag.Float64("scale", 0.01, "design scale relative to the paper")
		seed   = flag.Int64("seed", 1, "generation seed")
		cycles = flag.Int("cycles", 1000, "stimulus clock cycles")
		af     = flag.Float64("af", 0.8, "activity factor (switched input share per cycle)")
		scan   = flag.Int("scan", 16, "scan-enable burst period in cycles (0 = off)")
		outDir = flag.String("o", ".", "output directory")
		list   = flag.Bool("list", false, "list presets and exit")
	)
	flag.Parse()
	if *list {
		fmt.Println("preset         process  paper#cells")
		for _, p := range gen.Presets {
			fmt.Printf("%-14s %-8s %11d\n", p.Name, p.Process, p.FullCells)
		}
		return
	}
	if err := run(*preset, *scale, *seed, *cycles, *af, *scan, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(preset string, scale float64, seed int64, cycles int, af float64, scan int, outDir string) error {
	p, err := gen.PresetByName(preset)
	if err != nil {
		return err
	}
	d, err := gen.Build(p.Spec(scale, seed))
	if err != nil {
		return err
	}
	st := d.Netlist.Stats()
	fmt.Fprintf(os.Stderr, "benchgen: %s at scale %g: %d cells, %d nets, %d pins, %d sequential\n",
		preset, scale, st.Cells, st.Nets, st.Pins, d.Netlist.SequentialCount())

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	write := func(name, content string) error {
		return os.WriteFile(filepath.Join(outDir, name), []byte(content), 0o644)
	}
	if err := write(preset+".v", netlist.WriteVerilog(d.Netlist)); err != nil {
		return err
	}
	if err := write(preset+".sdf", gen.SDFText(d, seed)); err != nil {
		return err
	}

	stim := gen.Stimuli(d, gen.StimSpec{
		Cycles: cycles, ActivityFactor: af, Seed: seed, ScanBurst: scan,
	})
	names := make([]string, len(d.Netlist.PortsIn))
	idx := make(map[netlist.NetID]int)
	for i, nid := range d.Netlist.PortsIn {
		names[i] = d.Netlist.Nets[nid].Name
		idx[nid] = i
	}
	f, err := os.Create(filepath.Join(outDir, preset+".vcd"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := vcd.NewWriter(f, d.Netlist.Name, names)
	for _, s := range stim {
		if err := w.Change(s.Time, idx[s.Net], s.Val); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchgen: wrote %s.v %s.sdf %s.vcd to %s (%d stimulus events)\n",
		preset, preset, preset, outDir, len(stim))
	return nil
}
