package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gatesim/internal/gen"
	"gatesim/internal/netlist"
	"gatesim/internal/obs"
	"gatesim/internal/timing"
	"gatesim/internal/vcd"
)

// TestEndToEnd exercises the full command path: generate a benchmark to
// disk, run the simulator over the files, and validate the output VCD.
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	p, err := gen.PresetByName("blabla")
	if err != nil {
		t.Fatal(err)
	}
	d, err := gen.Build(p.Spec(0.005, 1))
	if err != nil {
		t.Fatal(err)
	}
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	vPath := write("d.v", netlist.WriteVerilog(d.Netlist))
	sdfPath := write("d.sdf", gen.SDFText(d, 1))

	stim := gen.Stimuli(d, gen.StimSpec{Cycles: 40, ActivityFactor: 0.7, Seed: 1, ScanBurst: 8})
	var sb strings.Builder
	names := make([]string, len(d.Netlist.PortsIn))
	idx := map[int]int{}
	for i, nid := range d.Netlist.PortsIn {
		names[i] = d.Netlist.Nets[nid].Name
		idx[int(nid)] = i
	}
	w := vcd.NewWriter(&sb, "d", names)
	// Stimuli must be globally time-sorted for the writer.
	for tcur := int64(0); ; {
		next := int64(-1)
		for _, s := range stim {
			if s.Time >= tcur && (next == -1 || s.Time < next) {
				next = s.Time
			}
		}
		if next == -1 {
			break
		}
		for _, s := range stim {
			if s.Time == next {
				if err := w.Change(s.Time, idx[int(s.Net)], s.Val); err != nil {
					t.Fatal(err)
				}
			}
		}
		tcur = next + 1
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	vcdPath := write("d.vcd", sb.String())
	outPath := filepath.Join(dir, "out.vcd")

	saifPath := filepath.Join(dir, "out.saif")
	tracePath := filepath.Join(dir, "out.trace.json")
	metricsPath := filepath.Join(dir, "out.metrics.json")
	if err := run(context.Background(), vPath, "", "", sdfPath, vcdPath, outPath, saifPath, "serial", 1, 0, "outputs", false,
		timing.Margins{Setup: 50, Hold: 20},
		obsConfig{TracePath: tracePath, MetricsPath: metricsPath}); err != nil {
		t.Fatal(err)
	}
	outF, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer outF.Close()
	r, err := vcd.NewReader(outF)
	if err != nil {
		t.Fatal(err)
	}
	chs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(chs) == 0 {
		t.Error("no output events produced")
	}
	// -saif implies -watch all, so the VCD carries every net.
	if len(r.Signals()) != len(d.Netlist.Nets) {
		t.Errorf("output signals: %d, want %d", len(r.Signals()), len(d.Netlist.Nets))
	}
	saifData, err := os.ReadFile(saifPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(saifData), "(SAIFILE") || !strings.Contains(string(saifData), "(TC ") {
		t.Error("SAIF output malformed")
	}

	// -trace must produce a valid Chrome trace-event file with the engine's
	// span vocabulary, -metrics a decodable run report with sim counters.
	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceJSON(traceData); err != nil {
		t.Errorf("-trace output fails validation: %v", err)
	}
	for _, want := range []string{`"sweep"`, `"slice"`, `"sim.events_committed"`} {
		if !strings.Contains(string(traceData), want) {
			t.Errorf("-trace output missing %s", want)
		}
	}
	metricsData, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(metricsData, &rep); err != nil {
		t.Fatalf("-metrics output not a run report: %v", err)
	}
	if rep.Counters["sim.sweeps"] == 0 || rep.Counters["sim.events_committed"] == 0 {
		t.Errorf("-metrics report missing sim counters: %v", rep.Counters)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "/nonexistent.v", "", "", "", "/nonexistent.vcd", "", "", "serial", 1, 0, "outputs", false, timing.Margins{}, obsConfig{}); err == nil {
		t.Error("missing netlist must fail")
	}
}
