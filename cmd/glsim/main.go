// glsim simulates a delay-annotated gate-level netlist: the end-to-end tool
// the paper's Figure 1 describes. Inputs are a Liberty cell library, a
// structural-Verilog netlist, an SDF delay annotation and a VCD stimulus
// file; the output is a VCD of the watched nets plus activity statistics.
//
// Usage:
//
//	glsim -v design.v -sdf design.sdf -vcd stimuli.vcd -o out.vcd \
//	      [-lib cells.lib] [-mode auto|serial|parallel|manycore] \
//	      [-threads N] [-slice PS] [-watch all|outputs] [-power] [-timeout D] \
//	      [-trace out.json] [-metrics out.json] [-debug-addr :6060]
//
// -timeout D aborts the simulation after D: the engine stops at the next
// sweep boundary and glsim exits non-zero with the structured error.
//
// -trace writes a Chrome/Perfetto trace-event JSON (load it in
// ui.perfetto.dev or chrome://tracing), -metrics writes the full metric
// snapshot, and -debug-addr serves live metric/expvar/pprof introspection
// while the run is in flight (binds localhost unless a host is given).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"gatesim/internal/event"
	"gatesim/internal/gen"
	"gatesim/internal/harness"
	"gatesim/internal/liberty"
	"gatesim/internal/netlist"
	"gatesim/internal/obs"
	"gatesim/internal/plan"
	"gatesim/internal/sdf"
	"gatesim/internal/sim"
	"gatesim/internal/stats"
	"gatesim/internal/timing"
	"gatesim/internal/truthtab"
	"gatesim/internal/vcd"
)

func main() {
	var (
		vFile    = flag.String("v", "", "structural Verilog netlist, flat or hierarchical (required)")
		topMod   = flag.String("top", "", "top module for hierarchical netlists (default: auto-detect)")
		libFile  = flag.String("lib", "", "Liberty library (default: built-in library)")
		sdfFile  = flag.String("sdf", "", "SDF delay annotation (default: toy-STA delays)")
		vcdFile  = flag.String("vcd", "", "VCD stimulus file (required)")
		outFile  = flag.String("o", "", "output VCD file (default: stdout)")
		modeFlag = flag.String("mode", "auto", "execution mode: auto, serial, parallel, manycore")
		threads  = flag.Int("threads", 0, "worker threads (0 = all cores)")
		slicePS  = flag.Int64("slice", 0, "streaming slice length in ps (0 = default)")
		watch    = flag.String("watch", "outputs", "nets to dump: outputs or all")
		power    = flag.Bool("power", false, "print activity and power report")
		setup    = flag.Int64("setup", 0, "setup margin in ps for dynamic timing checks (0 = off)")
		hold     = flag.Int64("hold", 0, "hold margin in ps for dynamic timing checks")
		saifOut  = flag.String("saif", "", "write switching activity to this SAIF file (implies -watch all)")
		timeout  = flag.Duration("timeout", 0, "abort the simulation after this long (0 = no limit)")

		tracePath = flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON of the run to this file")
		metrics   = flag.String("metrics", "", "write the full metric snapshot as JSON to this file")
		debugAddr = flag.String("debug-addr", "", "serve /debug/metrics, expvar and pprof on this address (host-less addr binds localhost)")
	)
	flag.Parse()
	if *vFile == "" || *vcdFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ocfg := obsConfig{TracePath: *tracePath, MetricsPath: *metrics, DebugAddr: *debugAddr}
	if err := run(ctx, *vFile, *topMod, *libFile, *sdfFile, *vcdFile, *outFile, *saifOut, *modeFlag, *threads, *slicePS, *watch, *power, timing.Margins{Setup: *setup, Hold: *hold}, ocfg); err != nil {
		fmt.Fprintln(os.Stderr, "glsim:", err)
		var se *sim.SimError
		if errors.As(err, &se) {
			if se.Oscillation != nil {
				fmt.Fprintln(os.Stderr, "glsim:", se.Oscillation.Summary())
			}
			if se.Panic != nil && len(se.Panic.Stack) > 0 {
				fmt.Fprintf(os.Stderr, "%s\n", se.Panic.Stack)
			}
		}
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "glsim: simulation exceeded -timeout")
		}
		os.Exit(1)
	}
}

// obsConfig carries the observability flag values: output paths for the
// trace and metric artifacts and the live-introspection bind address.
type obsConfig struct {
	TracePath   string
	MetricsPath string
	DebugAddr   string
}

func run(ctx context.Context, vFile, topMod, libFile, sdfFile, vcdFile, outFile, saifOut, modeFlag string, threads int, slicePS int64, watch string, power bool, margins timing.Margins, ocfg obsConfig) error {
	var (
		reg *obs.Registry
		tr  *obs.Trace
	)
	if ocfg.MetricsPath != "" || ocfg.DebugAddr != "" {
		reg = obs.NewRegistry()
	}
	if ocfg.TracePath != "" {
		tr = obs.NewTrace()
	}
	if ocfg.DebugAddr != "" {
		ds, err := obs.StartDebug(ocfg.DebugAddr, reg)
		if err != nil {
			return err
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "glsim: debug endpoint at http://%s/debug/metrics\n", ds.Addr())
	}

	lib, err := liberty.Builtin()
	if err != nil {
		return fmt.Errorf("built-in library: %w", err)
	}
	if libFile != "" {
		src, err := os.ReadFile(libFile)
		if err != nil {
			return err
		}
		if lib, err = liberty.Parse(string(src)); err != nil {
			return err
		}
	}
	compileStart := time.Now()
	clib, err := truthtab.CompileLibrary(lib)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "glsim: compiled %d cells in %v\n", len(clib.Tables), time.Since(compileStart).Round(time.Millisecond))

	src, err := os.ReadFile(vFile)
	if err != nil {
		return err
	}
	nl, err := netlist.ParseVerilogHierarchy(string(src), lib, topMod)
	if err != nil {
		return err
	}
	st := nl.Stats()
	fmt.Fprintf(os.Stderr, "glsim: %s: %d cells, %d nets, %d pins (%d sequential)\n",
		nl.Name, st.Cells, st.Nets, st.Pins, nl.SequentialCount())

	var delays *sdf.Delays
	if sdfFile != "" {
		text, err := os.ReadFile(sdfFile)
		if err != nil {
			return err
		}
		f, err := sdf.Parse(string(text))
		if err != nil {
			return err
		}
		if delays, err = sdf.Apply(f, nl, sdf.Delay{Rise: 1, Fall: 1}); err != nil {
			return err
		}
	} else {
		d := &gen.Design{Netlist: nl}
		delays = gen.Delays(d, 1)
		fmt.Fprintln(os.Stderr, "glsim: no SDF given; using toy-STA delays")
	}

	var mode sim.Mode
	switch modeFlag {
	case "auto":
		mode = sim.ModeAuto
	case "serial":
		mode = sim.ModeSerial
	case "parallel":
		mode = sim.ModeParallel
	case "manycore":
		mode = sim.ModeManycore
	default:
		return fmt.Errorf("unknown mode %q", modeFlag)
	}
	lowerStart := time.Now()
	pl, err := plan.Build(nl, clib, delays)
	if err != nil {
		return err
	}
	engine, err := sim.NewFromPlan(pl, sim.Options{Mode: mode, Threads: threads, Metrics: reg, Trace: tr})
	if err != nil {
		return err
	}
	defer engine.Close()
	fmt.Fprintf(os.Stderr, "glsim: lowered design in %v; execution mode %v\n",
		time.Since(lowerStart).Round(time.Millisecond), engine.Mode())

	stimF, err := os.Open(vcdFile)
	if err != nil {
		return err
	}
	defer stimF.Close()
	reader, err := vcd.NewReader(stimF)
	if err != nil {
		return err
	}
	source, err := harness.NewVCDSource(reader, nl)
	if err != nil {
		return err
	}

	if saifOut != "" {
		watch = "all"
	}
	var checker *timing.Checker
	if margins.Setup > 0 || margins.Hold > 0 {
		if checker, err = timing.NewChecker(nl, clib, margins); err != nil {
			return err
		}
	}

	// dump = nets written to the output VCD; watched = dump plus whatever
	// the timing checker needs to observe.
	var dump []netlist.NetID
	switch watch {
	case "outputs":
		dump = nl.PortsOut
	case "all":
		for i := range nl.Nets {
			dump = append(dump, netlist.NetID(i))
		}
	default:
		return fmt.Errorf("unknown -watch value %q", watch)
	}
	watched := append([]netlist.NetID(nil), dump...)
	if checker != nil {
		seen := make(map[netlist.NetID]bool, len(watched))
		for _, nid := range watched {
			seen[nid] = true
		}
		for _, nid := range checker.WatchedNets() {
			if !seen[nid] {
				seen[nid] = true
				watched = append(watched, nid)
			}
		}
	}
	names := make([]string, len(dump))
	for i, nid := range dump {
		names[i] = nl.Nets[nid].Name
	}

	out := os.Stdout
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	writer := vcd.NewWriter(out, nl.Name, names)
	idx := make(map[netlist.NetID]int, len(dump))
	for i, nid := range dump {
		idx[nid] = i
	}
	activity := stats.NewActivity(nl)
	var tracker *stats.DurationTracker
	if saifOut != "" {
		// The plan already carries the settled initial conditions.
		tracker = stats.NewDurationTracker(nl, pl.NetInit)
	}

	simStart := time.Now()
	var lastTime int64
	var writeErr error
	err = engine.RunStreamCtx(ctx, source, sim.StreamConfig{
		SlicePS: slicePS,
		Watch:   watched,
		OnEvent: func(nid netlist.NetID, ev event.Event) {
			activity.Record(nid, ev)
			if tracker != nil {
				tracker.Record(nid, ev)
			}
			if checker != nil {
				checker.Observe(nid, ev)
			}
			if ev.Time > lastTime {
				lastTime = ev.Time
			}
			if di, ok := idx[nid]; ok {
				if werr := writer.Change(ev.Time, di, ev.Val); werr != nil && writeErr == nil {
					writeErr = werr
				}
			}
		},
	})
	if err != nil {
		return err
	}
	if writeErr != nil {
		return writeErr
	}
	if err := writer.Flush(); err != nil {
		return err
	}
	es := engine.Stats()
	fmt.Fprintf(os.Stderr, "glsim: simulated in %v (%d sweeps, %d gate visits, %d queries, %d events)\n",
		time.Since(simStart).Round(time.Millisecond), es.Sweeps, es.Visits, es.Queries, es.EventsCommitted)
	if es.PoolRounds > 0 {
		fmt.Fprintf(os.Stderr, "glsim: scheduling: %d pool rounds (%d goroutines spawned, %d wakes, %d parks, %d levels fused), %v in sweeps\n",
			es.PoolRounds, es.PoolSpawned, es.PoolWakes, es.PoolParks, es.LevelsFused,
			time.Duration(es.SweepNS).Round(time.Millisecond))
	}
	if power {
		rep := activity.Power(lastTime, 1.0)
		fmt.Fprint(os.Stderr, rep.Format(15))
	}
	if checker != nil {
		fmt.Fprint(os.Stderr, checker.Summary(20))
	}
	if tracker != nil {
		if err := os.WriteFile(saifOut, []byte(tracker.WriteSAIF(lastTime)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "glsim: wrote SAIF activity to %s"+"\n", saifOut)
	}
	if ocfg.TracePath != "" {
		f, err := os.Create(ocfg.TracePath)
		if err != nil {
			return err
		}
		if err := tr.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if n := tr.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "glsim: trace buffer full; dropped %d events\n", n)
		}
		fmt.Fprintf(os.Stderr, "glsim: wrote trace (%d events) to %s — open in ui.perfetto.dev or chrome://tracing\n", tr.Len(), ocfg.TracePath)
	}
	if ocfg.MetricsPath != "" {
		f, err := os.Create(ocfg.MetricsPath)
		if err != nil {
			return err
		}
		if err := reg.WriteReport(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "glsim: wrote metric report to %s\n", ocfg.MetricsPath)
	}
	return nil
}
